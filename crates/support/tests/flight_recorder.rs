//! Integration tests for the flight-recorder surfaces: golden Chrome
//! `trace_event` output, Prometheus text-format conformance, the
//! exposition server's bind/serve/shutdown lifecycle, and the sampling
//! profiler under multi-threaded load.

use entmatcher_support::json::Json;
use entmatcher_support::telemetry::chrome::to_chrome_string;
use entmatcher_support::telemetry::expose::{
    render_prometheus, MetricsServer, Response, Routes,
};
use entmatcher_support::telemetry::profile::Profiler;
use entmatcher_support::telemetry::Telemetry;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The exposition server and profiler hold the registry for a thread's
/// lifetime, so tests give them `'static` standalone registries.
fn leaked_registry() -> &'static Telemetry {
    Box::leak(Box::new(Telemetry::new()))
}

// ---------------------------------------------------------------------------
// Chrome / Perfetto export
// ---------------------------------------------------------------------------

/// Builds a trace with the shapes the Chrome exporter must handle:
/// nesting, multiple thread lanes, byte attribution, and names that need
/// JSON escaping.
fn recorder_trace(t: &Telemetry) -> entmatcher_support::telemetry::Trace {
    t.set_enabled(true);
    {
        let mut root = t.span("pipeline");
        root.add_bytes(1024);
        {
            let _child = t.span("similarity \"cosine\"\nblocked");
        }
        std::thread::scope(|scope| {
            scope.spawn(|| {
                drop(t.span("worker-lane"));
            });
        });
    }
    t.add("gemm.tiles", 42);
    t.observe("loss", 0.5);
    t.snapshot()
}

#[test]
fn chrome_export_is_valid_trace_event_json() {
    let t = Telemetry::new();
    let trace = recorder_trace(&t);
    let text = to_chrome_string(&trace);

    // Golden structural properties, checked on the re-parsed document so
    // escaping bugs cannot hide in string comparison.
    let doc = Json::parse(&text).expect("chrome export must be valid JSON");
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(doc["displayTimeUnit"], "ms");

    // Every non-metadata event is a complete event with the required keys.
    let complete: Vec<&Json> = events.iter().filter(|e| e["ph"] == "X").collect();
    assert_eq!(complete.len(), trace.spans.len());
    for e in &complete {
        assert!(e["name"].as_str().is_some());
        assert!(e["ts"].as_f64().is_some());
        assert!(e["dur"].as_f64().unwrap() >= 0.0);
        assert_eq!(e["pid"].as_f64(), Some(1.0));
        assert!(e["tid"].as_f64().unwrap() >= 1.0, "thread lane missing");
    }

    // The escaped name survives the round trip exactly.
    assert!(
        complete
            .iter()
            .any(|e| e["name"] == "similarity \"cosine\"\nblocked"),
        "escaped span name must round-trip"
    );

    // Parent nesting: the child event's args.parent is the root's args.id.
    let root = complete.iter().find(|e| e["name"] == "pipeline").unwrap();
    let child = complete
        .iter()
        .find(|e| e["name"].as_str().is_some_and(|n| n.starts_with("similarity")))
        .unwrap();
    assert_eq!(child["args"]["parent"], root["args"]["id"].clone());
    assert_eq!(root["args"]["bytes"].as_f64(), Some(1024.0));

    // Thread lanes: the worker span sits on a different tid than the root.
    let worker = complete.iter().find(|e| e["name"] == "worker-lane").unwrap();
    assert_ne!(worker["tid"].as_f64(), root["tid"].as_f64());

    // Timestamps are microseconds: child starts at or after the root and
    // within it.
    let (rts, rdur) = (root["ts"].as_f64().unwrap(), root["dur"].as_f64().unwrap());
    let cts = child["ts"].as_f64().unwrap();
    assert!(cts >= rts && cts <= rts + rdur);

    // Counters appear as counter events.
    let counter = events.iter().find(|e| e["ph"] == "C").expect("counter event");
    assert_eq!(counter["name"], "gemm.tiles");
    assert_eq!(counter["args"]["value"].as_f64(), Some(42.0));
}

// ---------------------------------------------------------------------------
// Prometheus text-format conformance
// ---------------------------------------------------------------------------

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_sample_value(v: &str) -> Option<f64> {
    match v {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

/// A minimal text-format (0.0.4) conformance check: every line is a
/// `# HELP`/`# TYPE` comment or a `name[{labels}] value` sample with a
/// valid metric name, balanced/escaped labels, and a parseable value.
/// Returns the samples as `(name, labels, value)`.
fn check_exposition(text: &str) -> Vec<(String, String, f64)> {
    let mut samples = Vec::new();
    let mut declared_types: Vec<String> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            assert!(
                rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                "unknown comment form: {line}"
            );
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().expect("TYPE needs a metric name");
                let kind = parts.next().expect("TYPE needs a kind");
                assert!(is_valid_metric_name(name), "bad TYPE name {name:?}");
                assert!(
                    ["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind),
                    "bad TYPE kind {kind:?}"
                );
                assert!(
                    !declared_types.contains(&name.to_string()),
                    "metric {name} TYPE-declared twice"
                );
                declared_types.push(name.to_string());
            }
            continue;
        }
        // Sample line: name{labels} value  |  name value
        let (name_labels, value) = line.rsplit_once(' ').expect("sample needs a value");
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, rest)) => {
                let labels = rest.strip_suffix('}').expect("unbalanced label braces");
                // Label values must be quoted, with ", \, and newline
                // escaped (a backslash escapes exactly \, ", or n).
                for pair in labels.split("\",") {
                    let (k, v) = pair.split_once("=\"").expect("label needs =\"");
                    assert!(is_valid_metric_name(k), "bad label name {k:?}");
                    let v = v.strip_suffix('"').unwrap_or(v);
                    assert!(!v.contains('\n'), "raw newline in label value {v:?}");
                    let mut chars = v.chars();
                    while let Some(c) = chars.next() {
                        match c {
                            '\\' => assert!(
                                matches!(chars.next(), Some('\\' | '"' | 'n')),
                                "bad escape in label value {v:?}"
                            ),
                            '"' => panic!("unescaped quote in label value {v:?}"),
                            _ => {}
                        }
                    }
                }
                (n, labels.to_string())
            }
            None => (name_labels, String::new()),
        };
        assert!(is_valid_metric_name(name), "bad metric name {name:?}");
        let value = parse_sample_value(value).unwrap_or_else(|| panic!("bad value in {line:?}"));
        samples.push((name.to_string(), labels, value));
    }
    samples
}

#[test]
fn prometheus_exposition_conforms() {
    let t = Telemetry::new();
    t.set_enabled(true);
    {
        let mut s = t.span("pipeline");
        s.add_bytes(2048);
        drop(t.span("similarity"));
    }
    // A span name that needs label escaping.
    drop(t.span("cell:\"D-Z\"/R-CSLS"));
    t.add("sinkhorn.iterations", 100);
    t.add("grid.heartbeat", 3);
    for v in [0.25, 1.0, 4.0, 0.0, f64::NAN] {
        t.observe("sinkhorn.col_dev", v);
    }
    let text = render_prometheus(&t.snapshot());
    let samples = check_exposition(&text);

    let get = |name: &str, labels: &str| {
        samples
            .iter()
            .find(|(n, l, _)| n == name && l.contains(labels))
            .map(|&(_, _, v)| v)
            .unwrap_or_else(|| panic!("missing sample {name}{{{labels}}} in:\n{text}"))
    };
    assert_eq!(get("entmatcher_up", ""), 1.0);
    assert_eq!(get("entmatcher_sinkhorn_iterations_total", ""), 100.0);
    assert_eq!(get("entmatcher_grid_heartbeat_total", ""), 3.0);

    // Histogram invariants: cumulative buckets are non-decreasing in le
    // order and +Inf equals _count.
    let mut buckets: Vec<(f64, f64)> = samples
        .iter()
        .filter(|(n, _, _)| n == "entmatcher_sinkhorn_col_dev_bucket")
        .map(|(_, l, v)| {
            let le = l
                .split("le=\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .map(|s| parse_sample_value(s).unwrap())
                .unwrap();
            (le, *v)
        })
        .collect();
    buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1), "{buckets:?}");
    assert_eq!(buckets.last().unwrap().0, f64::INFINITY);
    assert_eq!(
        buckets.last().unwrap().1,
        get("entmatcher_sinkhorn_col_dev_count", "")
    );
    assert_eq!(get("entmatcher_sinkhorn_col_dev_sum", ""), 5.25);

    // Span aggregates, including the escaped cell name.
    assert_eq!(get("entmatcher_span_calls_total", "span=\"pipeline\""), 1.0);
    assert!(get("entmatcher_span_bytes_total", "span=\"pipeline\"") >= 2048.0);
    assert_eq!(
        get("entmatcher_span_calls_total", "span=\"cell:\\\"D-Z\\\"/R-CSLS\""),
        1.0
    );
}

// ---------------------------------------------------------------------------
// Exposition server lifecycle
// ---------------------------------------------------------------------------

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    // One request per connection: ask the keep-alive server to close so
    // read_to_string terminates without waiting out the idle timeout.
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a head/body split");
    (head.to_string(), body.to_string())
}

#[test]
fn metrics_server_binds_serves_and_shuts_down() {
    let t = leaked_registry();
    t.set_enabled(true);
    t.add("lifecycle.test", 9);
    let server = MetricsServer::start_with_interval(t, "127.0.0.1:0", Duration::from_millis(20))
        .expect("bind ephemeral port");
    let addr = server.addr();
    assert_ne!(addr.port(), 0, "port 0 must resolve to a real port");

    // /healthz is immediate.
    let (head, body) = http_get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");

    // /metrics reflects counters recorded before startup...
    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("text/plain"), "{head}");
    assert!(body.contains("entmatcher_up 1"), "{body}");
    assert!(body.contains("entmatcher_lifecycle_test_total 9"), "{body}");

    // ...and picks up live increments via the snapshot publisher.
    t.add("lifecycle.test", 1);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (_, body) = http_get(addr, "/metrics");
        if body.contains("entmatcher_lifecycle_test_total 10") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "publisher never refreshed the page:\n{body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Unknown paths 404; non-GET methods are rejected.
    let (head, _) = http_get(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    // Shutdown joins the threads and releases the port.
    server.shutdown();
    let gone = TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err();
    assert!(gone, "server still accepting after shutdown");
}

/// Sends raw bytes and returns the full response text (empty if the
/// server closed without answering).
fn http_raw(addr: std::net::SocketAddr, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(request).expect("send request");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

#[test]
fn server_hardening_against_real_clients() {
    let t = leaked_registry();
    t.set_enabled(true);
    let routes = Routes {
        paths: vec!["/echo".to_owned()],
        handler: Arc::new(|req| {
            if req.path == "/echo" && req.method == "POST" {
                Some(Response::json(String::from_utf8_lossy(&req.body).into_owned()))
            } else {
                None
            }
        }),
    };
    let server = MetricsServer::start_with_routes(
        t,
        "127.0.0.1:0",
        Duration::from_millis(20),
        Some(routes),
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    // A client asking for Connection: close gets it echoed (the
    // keep-alive default is pinned in tests/keepalive.rs).
    let (head, _) = http_get(addr, "/healthz");
    assert!(head.contains("Connection: close"), "{head}");

    // HEAD answers like GET minus the body: same status, real
    // Content-Length, nothing after the blank line.
    let resp = http_raw(addr, b"HEAD /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    let (head, body) = resp.split_once("\r\n\r\n").expect("head/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("Content-Length: 3"), "{head}");
    assert!(body.is_empty(), "HEAD must not send a body: {body:?}");

    // Wrong method on a known path is 405, not 404 — for built-ins and
    // custom routes alike.
    let resp = http_raw(addr, b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
    let resp = http_raw(addr, b"DELETE /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
    let resp = http_raw(addr, b"GET /echo HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
    // ...but an unknown path stays 404 regardless of method.
    let resp = http_raw(addr, b"POST /nope HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");

    // A custom route sees the request body (Content-Length framing).
    let resp = http_raw(
        addr,
        b"POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
    );
    let (head, body) = resp.split_once("\r\n\r\n").expect("head/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "hello");

    // Partial request reads are tolerated: a client that disconnects
    // mid-head gets a 400, not a hung or crashed server thread.
    let resp = http_raw(addr, b"GET /hea");
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");

    // A malformed request line is a 400 too.
    let resp = http_raw(addr, b"nonsense\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");

    // Oversized request heads are rejected with 431 instead of being
    // buffered without bound.
    let mut big = b"GET /metrics HTTP/1.1\r\nX-Junk: ".to_vec();
    big.extend(std::iter::repeat_n(b'a', 10_000));
    big.extend_from_slice(b"\r\n\r\n");
    let resp = http_raw(addr, &big);
    assert!(resp.starts_with("HTTP/1.1 431"), "{resp}");

    // An oversized declared body is rejected with 413 before reading it.
    let resp = http_raw(
        addr,
        b"POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 99999999\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");

    // The server survives all of the above and still serves.
    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(body.contains("entmatcher_up 1"), "{body}");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Sampling profiler
// ---------------------------------------------------------------------------

#[test]
fn sampler_captures_stacks_from_many_threads() {
    let t = leaked_registry();
    t.set_enabled(true);
    let profiler = Profiler::start(t, 500);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                let _outer = t.span("grid");
                let _inner = t.span("cell");
                std::thread::sleep(Duration::from_millis(80));
            });
        }
    });
    let profile = profiler.stop();
    assert!(profile.ticks > 0, "sampler never ticked");
    assert!(
        profile.stack_count("grid;cell") > 0,
        "expected grid;cell stacks, folded:\n{}",
        profile.to_folded()
    );
    // Three threads with open stacks: each tick inside the window
    // captured up to three observations, and the folded output parses as
    // `frames count` lines.
    for line in profile.to_folded().lines() {
        let (stack, count) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty());
        assert!(count.parse::<u64>().unwrap() > 0);
    }
}

#[test]
fn sampler_adds_no_overhead_when_disabled() {
    let t = leaked_registry();
    // Recording off: the sampler must observe nothing, and the span fast
    // path must stay inert (guards record no ids) and fast.
    let profiler = Profiler::start(t, 2000);
    let start = Instant::now();
    for _ in 0..100_000 {
        let span = t.span("hot");
        drop(span);
    }
    let elapsed = start.elapsed();
    std::thread::sleep(Duration::from_millis(20));
    let profile = profiler.stop();
    assert_eq!(profile.ticks, 0, "sampler must skip disabled registries");
    assert!(profile.is_empty());
    assert!(t.snapshot().spans.is_empty());
    // Loose bound: 100k disabled spans are ~one atomic load + Instant
    // each; even heavily loaded CI finishes far under a second.
    assert!(
        elapsed < Duration::from_secs(1),
        "disabled span fast path too slow: {elapsed:?}"
    );
}
