//! Persistent work-stealing worker pool.
//!
//! Every heavy loop in the matching pipeline is data-parallel over rows of
//! some matrix. Until now each of those loops paid a fresh
//! `std::thread::scope` spawn *per call* and split the rows into one static
//! contiguous chunk per worker — fine for uniform-cost kernels, but
//! Sinkhorn calls the row pass hundreds of times (hundreds of spawns), and
//! RInf/Hungarian rows are not uniform cost, so static chunking leaves
//! workers idle behind the slowest chunk.
//!
//! This module replaces both costs with one process-wide pool:
//!
//! * **Persistent workers.** `width - 1` threads are spawned once, lazily,
//!   at first use (the submitting caller is the remaining participant).
//!   The width comes from `ENTMATCHER_THREADS`, falling back to
//!   [`std::thread::available_parallelism`].
//! * **Work stealing over fine-grained tasks.** A job is an index range
//!   `0..tasks`, split into one contiguous sub-range per pool slot, each
//!   guarded by its own atomic cursor. A participant drains its own range
//!   first (preserving the cache-friendly contiguous walk), then claims
//!   from other slots' ranges — a *steal*. No lock-free deque is needed:
//!   `fetch_add` on a shared cursor is the entire claim protocol.
//! * **Panic propagation.** A panic inside a task is caught, the first
//!   payload is stored on the job, every remaining claimed task still
//!   finishes (so borrowed data stays alive until no thread can touch it),
//!   and the payload is re-raised *in the submitting caller* with the
//!   original message.
//! * **Nesting.** A task may itself call [`Pool::run`]; the inner job is
//!   pushed to the same queue (idle workers help) and the calling worker
//!   participates inline, so nested parallelism cannot deadlock even at
//!   width 1.
//!
//! # Telemetry
//!
//! When the global telemetry registry is recording, every completed job
//! adds to the `pool.tasks` (tasks executed) and `pool.steals` (tasks
//! claimed from another slot's range) counters, and each worker wraps its
//! participation in a `pool.worker` span on its own thread lane — so pool
//! utilization is visible in `/metrics` (`entmatcher_pool_tasks_total`,
//! `entmatcher_pool_steals_total`, and the per-span aggregate
//! `entmatcher_span_seconds_total{span="pool.worker"}`) and worker
//! activity shows up as separate lanes in Perfetto traces and profiler
//! stacks. The same numbers are available programmatically via
//! [`Pool::stats`] whether or not telemetry is on.

use crate::telemetry;
use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A persistent pool of worker threads executing index-range jobs.
///
/// Most code uses the process-global instance via [`global`]; standalone
/// pools exist so tests can exercise specific widths without touching the
/// `ENTMATCHER_THREADS` environment. Dropping a standalone pool shuts its
/// workers down and joins them.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    width: usize,
    tasks: AtomicU64,
    steals: AtomicU64,
}

/// Lifetime totals for a pool (see [`Pool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed (including tasks run inline on the serial path).
    pub tasks: u64,
    /// Tasks claimed from another slot's range.
    pub steals: u64,
}

struct Shared {
    queue: Mutex<Vec<Arc<Job>>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

/// Type-erased borrow of the job closure.
///
/// Safety: [`Pool::run`] does not return until `pending` reaches zero,
/// i.e. until every claimed task has finished executing on every thread,
/// so the pointee outlives all dereferences. The pointer is only ever
/// dereferenced to a `&(dyn Fn(usize) + Sync)`, which is safe to share.
struct TaskRef(*const (dyn Fn(usize) + Sync));
unsafe impl Send for TaskRef {}
unsafe impl Sync for TaskRef {}

struct Range {
    next: AtomicUsize,
    end: usize,
}

struct Job {
    task: TaskRef,
    ranges: Vec<Range>,
    /// Tasks not yet finished executing. The caller blocks until zero.
    pending: AtomicUsize,
    done: Mutex<()>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    tasks: AtomicU64,
    steals: AtomicU64,
}

impl Job {
    /// Claims one task index for the participant on `slot`: own range
    /// first, then the other slots' ranges in order (a steal). Returns
    /// `None` when every range is drained.
    fn claim(&self, slot: usize) -> Option<(usize, bool)> {
        let w = self.ranges.len();
        for k in 0..w {
            let r = &self.ranges[(slot + k) % w];
            // The cursor may overshoot `end` under contention; an
            // overshot range simply reads as empty.
            if r.next.load(Ordering::Relaxed) >= r.end {
                continue;
            }
            let i = r.next.fetch_add(1, Ordering::Relaxed);
            if i < r.end {
                return Some((i, k != 0));
            }
        }
        None
    }

    /// Whether any range still has unclaimed tasks.
    fn has_work(&self) -> bool {
        self.ranges
            .iter()
            .any(|r| r.next.load(Ordering::Relaxed) < r.end)
    }
}

// The slot a pool worker thread participates under; submitting callers
// that are not pool workers use slot 0.
thread_local! {
    static WORKER_SLOT: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

impl Pool {
    /// Creates a pool of `width` participants: `width - 1` background
    /// workers plus the submitting caller.
    pub fn new(width: usize) -> Pool {
        let width = width.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Vec::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let mut handles = Vec::new();
        for slot in 1..width {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("entmatcher-pool-{slot}"))
                .spawn(move || worker_loop(shared, slot))
                .expect("spawn pool worker");
            handles.push(handle);
        }
        Pool {
            shared,
            handles: Mutex::new(handles),
            width,
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// Number of participants (background workers + the caller).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Lifetime task/steal totals.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks: self.tasks.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }

    /// Executes `f(0) .. f(tasks - 1)` across the pool and returns when
    /// all of them have finished. Tasks may run in any order and on any
    /// participant; `f` must therefore be `Sync`. If any task panics, the
    /// remaining tasks still complete and the first panic payload is
    /// re-raised here with its original message.
    pub fn run(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if tasks == 1 || self.width == 1 {
            // Serial fast path: no queueing, panics propagate naturally.
            // Still counted, so `pool.tasks` reflects all kernel work.
            for i in 0..tasks {
                f(i);
            }
            self.tasks.fetch_add(tasks as u64, Ordering::Relaxed);
            telemetry::add("pool.tasks", tasks as u64);
            return;
        }

        // Contiguous sub-range per slot, first ranges one task longer
        // when the split is uneven.
        let w = self.width;
        let base = tasks / w;
        let extra = tasks % w;
        let mut ranges = Vec::with_capacity(w);
        let mut start = 0usize;
        for slot in 0..w {
            let len = base + usize::from(slot < extra);
            ranges.push(Range {
                next: AtomicUsize::new(start),
                end: start + len,
            });
            start += len;
        }
        // Erase the borrow's lifetime: the trait-object pointer type
        // defaults to `+ 'static`, which a borrowed closure cannot
        // satisfy nominally — but `run` blocks until every claimed task
        // has finished, so the borrow genuinely outlives all uses.
        let task = TaskRef(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f as *const _)
        });
        let job = Arc::new(Job {
            task,
            ranges,
            pending: AtomicUsize::new(tasks),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        });

        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.push(Arc::clone(&job));
        }
        self.shared.work_cv.notify_all();

        // The caller participates under its worker slot when this is a
        // nested call from inside a task, slot 0 otherwise.
        let slot = WORKER_SLOT.with(|s| s.get()).unwrap_or(0);
        participate(&job, slot, false);

        // Wait for tasks claimed by other participants to finish. The
        // last finisher notifies under `done`, so the load-then-wait
        // cannot miss the wakeup.
        {
            let mut guard = job.done.lock().expect("pool done lock poisoned");
            while job.pending.load(Ordering::Acquire) > 0 {
                guard = job.done_cv.wait(guard).expect("pool done wait poisoned");
            }
        }
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.retain(|j| !Arc::ptr_eq(j, &job));
        }

        let tasks_done = job.tasks.load(Ordering::Relaxed);
        let steals = job.steals.load(Ordering::Relaxed);
        self.tasks.fetch_add(tasks_done, Ordering::Relaxed);
        self.steals.fetch_add(steals, Ordering::Relaxed);
        telemetry::add("pool.tasks", tasks_done);
        if steals > 0 {
            telemetry::add("pool.steals", steals);
        }

        let payload = job.panic.lock().expect("pool panic lock poisoned").take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.work_cv.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().expect("pool handles poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Claims and executes tasks of `job` until none are left. `worker` marks
/// background pool threads, whose participation is wrapped in a
/// `pool.worker` telemetry span (opened lazily, only if a task is
/// actually executed) so worker busy-time lands on its own trace lane.
fn participate(job: &Job, slot: usize, worker: bool) {
    let mut span = None;
    while let Some((i, steal)) = job.claim(slot) {
        if worker && span.is_none() && telemetry::enabled() {
            span = Some(telemetry::span("pool.worker"));
        }
        // Safety: see `TaskRef` — the closure outlives the job.
        let f = unsafe { &*job.task.0 };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)));
        if let Err(payload) = result {
            let mut slot = job.panic.lock().expect("pool panic lock poisoned");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        // Publish the accounting BEFORE the pending decrement: the caller
        // may observe pending == 0 and read the job counters the moment
        // the last decrement lands, so counts flushed after the loop
        // could be lost. One relaxed add per task is noise next to the
        // task body.
        job.tasks.fetch_add(1, Ordering::Relaxed);
        if steal {
            job.steals.fetch_add(1, Ordering::Relaxed);
        }
        if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last task: wake the submitting caller. Taking the lock
            // orders this notify against the caller's re-check.
            let _guard = job.done.lock().expect("pool done lock poisoned");
            job.done_cv.notify_all();
        }
    }
    drop(span);
}

fn worker_loop(shared: Arc<Shared>, slot: usize) {
    WORKER_SLOT.with(|s| s.set(Some(slot)));
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = queue.iter().find(|j| j.has_work()) {
                    break Arc::clone(job);
                }
                queue = shared.work_cv.wait(queue).expect("pool queue wait poisoned");
            }
        };
        participate(&job, slot, true);
    }
}

// ---------------------------------------------------------------------------
// Global pool
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// Pool width configured by the environment: `ENTMATCHER_THREADS` when set
/// to a positive integer, otherwise the machine's available parallelism.
pub fn configured_width() -> usize {
    match std::env::var("ENTMATCHER_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// The process-global pool, created at first use with
/// [`configured_width`]. Its workers are never shut down.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(configured_width()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(pool.stats().tasks, 1000);
    }

    #[test]
    fn width_one_runs_inline() {
        let pool = Pool::new(1);
        let sum = AtomicUsize::new(0);
        pool.run(100, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
        assert_eq!(pool.stats(), PoolStats { tasks: 100, steals: 0 });
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let pool = Pool::new(3);
        pool.run(0, &|_| panic!("must not run"));
        assert_eq!(pool.stats().tasks, 0);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One slot's range is much slower than the others; with 4
        // participants and 64 tasks, finished participants must steal
        // from the slow range for the job to balance. We can't assert
        // scheduling, but we can assert completion and that the steal
        // counter is wired (>= 0 trivially; > 0 on any multi-core box
        // where the sleep skew forces it — keep the assertion to
        // completion + accounting so single-core CI stays deterministic).
        let pool = Pool::new(4);
        let hits = AtomicUsize::new(0);
        pool.run(64, &|i| {
            if i < 16 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            hits.fetch_add(1, Ordering::Relaxed);
        });
        let stats = pool.stats();
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        assert_eq!(stats.tasks, 64);
        assert!(stats.steals <= 64);
    }

    #[test]
    fn nested_runs_complete() {
        let pool = Pool::new(3);
        let total = AtomicUsize::new(0);
        pool.run(8, &|_| {
            pool.run(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn panic_propagates_with_original_message() {
        let pool = Pool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(32, &|i| {
                if i == 17 {
                    panic!("task 17 exploded");
                }
            });
        }));
        let payload = result.expect_err("panic must surface to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("payload should be a string");
        assert!(msg.contains("task 17 exploded"), "got: {msg}");
        // The pool survives the panic and keeps working.
        let ok = AtomicUsize::new(0);
        pool.run(10, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn panic_on_serial_path_propagates_too() {
        let pool = Pool::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(4, &|i| {
                if i == 2 {
                    panic!("serial boom");
                }
            });
        }));
        let payload = result.expect_err("panic must surface");
        assert!(payload
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("serial boom")));
    }

    #[test]
    fn dropping_a_pool_joins_its_workers() {
        let pool = Pool::new(4);
        pool.run(16, &|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn many_concurrent_jobs_from_many_threads() {
        let pool = Pool::new(4);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let pool = &pool;
                scope.spawn(move || {
                    let sum = AtomicUsize::new(0);
                    pool.run(200 + t, &|i| {
                        sum.fetch_add(i, Ordering::Relaxed);
                    });
                    let n = 200 + t;
                    assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
                });
            }
        });
    }

    #[test]
    fn configured_width_is_positive() {
        assert!(configured_width() >= 1);
        assert!(global().width() >= 1);
    }
}
