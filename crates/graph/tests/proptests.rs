//! Property-based tests of the KG data model invariants, on the in-tree
//! `entmatcher_support::prop` harness.

use entmatcher_graph::{AlignmentSet, Csr, EntityId, KgBuilder, Link, RelationId, Triple};
use entmatcher_support::prop::{check, Config, Gen};
use entmatcher_support::rng::Rng;
use entmatcher_support::{prop_assert, prop_assert_eq};

fn cfg() -> Config {
    Config::with_cases(128)
}

fn gen_triples(g: &mut Gen, n_entities: u32, max_len: usize) -> Vec<Triple> {
    let len = g.len_in(0, max_len);
    (0..len)
        .map(|_| {
            Triple::new(
                EntityId(g.gen_range(0..n_entities)),
                RelationId(g.gen_range(0..5u32)),
                EntityId(g.gen_range(0..n_entities)),
            )
        })
        .collect()
}

fn gen_links(g: &mut Gen, max_id: u32, max_len: usize) -> Vec<Link> {
    let len = g.len_in(1, max_len);
    (0..len)
        .map(|_| Link::new(EntityId(g.gen_range(0..max_id)), EntityId(g.gen_range(0..max_id))))
        .collect()
}

#[test]
fn csr_degree_sum_equals_half_edges() {
    check("csr_degree_sum_equals_half_edges", cfg(), |g| {
        let ts = gen_triples(g, 20, 60);
        let csr = Csr::build(20, &ts);
        let total: usize = csr.degrees().iter().sum();
        prop_assert_eq!(total, csr.num_edges());
        // Each non-loop triple contributes 2 half-edges, loops 1.
        let expected: usize = ts.iter().map(|t| if t.is_loop() { 1 } else { 2 }).sum();
        prop_assert_eq!(total, expected);
        Ok(())
    });
}

#[test]
fn csr_neighbors_are_symmetric() {
    check("csr_neighbors_are_symmetric", cfg(), |g| {
        let ts = gen_triples(g, 15, 40);
        let csr = Csr::build(15, &ts);
        for e in 0..15u32 {
            for edge in csr.neighbors(EntityId(e)) {
                // The reverse direction must exist on the neighbour, with
                // flipped orientation (unless a self-loop).
                if edge.neighbor == EntityId(e) {
                    continue;
                }
                let back = csr.neighbors(edge.neighbor).iter().any(|b| {
                    b.neighbor == EntityId(e)
                        && b.relation == edge.relation
                        && b.outgoing != edge.outgoing
                });
                prop_assert!(back, "edge {e}->{:?} has no mirror", edge.neighbor);
            }
        }
        Ok(())
    });
}

#[test]
fn split_partitions_links_exactly() {
    check("split_partitions_links_exactly", cfg(), |g| {
        let ls = gen_links(g, 100, 80);
        let seed = g.gen_range(0..1000u64);
        let set = AlignmentSet::new(ls.clone());
        let splits = set.split(0.2, 0.1, seed).unwrap();
        let total = splits.train.len() + splits.valid.len() + splits.test.len();
        prop_assert_eq!(total, ls.len());
        // Union as multiset equals the original.
        let mut got: Vec<(u32, u32)> = splits
            .train
            .iter()
            .chain(splits.valid.iter())
            .chain(splits.test.iter())
            .map(|l| (l.source.0, l.target.0))
            .collect();
        let mut want: Vec<(u32, u32)> = ls.iter().map(|l| (l.source.0, l.target.0)).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        Ok(())
    });
}

#[test]
fn cluster_preserving_split_has_integrity() {
    check("cluster_preserving_split_has_integrity", cfg(), |g| {
        let ls = gen_links(g, 30, 60);
        let seed = g.gen_range(0..1000u64);
        let set = AlignmentSet::new(ls);
        let splits = set.split_cluster_preserving(0.5, 0.2, seed).unwrap();
        // No entity may appear (as source or target) in two splits.
        type Sets = (
            std::collections::HashSet<u32>,
            std::collections::HashSet<u32>,
        );
        let collect = |s: &AlignmentSet| -> Sets {
            (
                s.iter().map(|l| l.source.0).collect(),
                s.iter().map(|l| l.target.0).collect(),
            )
        };
        let (tr_s, tr_t) = collect(&splits.train);
        let (va_s, va_t) = collect(&splits.valid);
        let (te_s, te_t) = collect(&splits.test);
        prop_assert!(
            tr_s.is_disjoint(&va_s) && tr_s.is_disjoint(&te_s) && va_s.is_disjoint(&te_s)
        );
        prop_assert!(
            tr_t.is_disjoint(&va_t) && tr_t.is_disjoint(&te_t) && va_t.is_disjoint(&te_t)
        );
        Ok(())
    });
}

#[test]
fn multiplicity_counts_are_a_partition() {
    check("multiplicity_counts_are_a_partition", cfg(), |g| {
        let ls = gen_links(g, 40, 60);
        let set = AlignmentSet::new(ls);
        let (one, multi) = set.link_multiplicity();
        prop_assert_eq!(one + multi, set.len());
        Ok(())
    });
}

#[test]
fn builder_roundtrips_symbols() {
    check("builder_roundtrips_symbols", cfg(), |g| {
        // A set of 1..=19 distinct lowercase names of length 1..=8.
        let want = g.len_in(1, 19);
        let mut names = std::collections::HashSet::new();
        while names.len() < want {
            let len = g.gen_range(1..=8usize);
            let name: String = (0..len).map(|_| g.gen_range(b'a'..=b'z') as char).collect();
            names.insert(name);
        }
        let names: Vec<String> = names.into_iter().collect();
        let mut b = KgBuilder::new("prop");
        for n in &names {
            b.add_entity(n);
        }
        let kg = b.build().unwrap();
        prop_assert_eq!(kg.num_entities(), names.len());
        for n in &names {
            let id = kg.entity_id(n).unwrap();
            prop_assert_eq!(kg.entity_name(id), Some(n.as_str()));
        }
        Ok(())
    });
}
