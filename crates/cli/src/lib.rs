#![warn(missing_docs)]

//! Command-line workflow for the EntMatcher reproduction.
//!
//! Five subcommands compose the full EA pipeline over plain files, so the
//! library is usable without writing Rust (the role the Python original's
//! scripts play):
//!
//! ```text
//! entmatcher generate --preset D-Z --scale 0.1 --out data/dz
//! entmatcher stats    --data data/dz
//! entmatcher encode   --data data/dz --encoder rrea --out data/dz/emb
//! entmatcher match    --data data/dz --embeddings data/dz/emb \
//!                     --algorithm csls --out data/dz/pairs.tsv
//! entmatcher eval     --data data/dz --pairs data/dz/pairs.tsv
//! ```
//!
//! Datasets are OpenEA-style TSV directories (`triples_1`, `triples_2`,
//! `ent_links`), so real benchmark dumps drop in for the synthetic
//! generator's output. Embeddings persist as `entmatcher-linalg` snapshot
//! files. Every command is a plain function returning its report string,
//! so the whole surface is unit-testable without spawning processes.

pub mod args;
pub mod commands;

pub use args::{parse_args, ParsedArgs};
pub use commands::{run_command, CliError};

/// Entry point shared by the binary and the tests: dispatches an argv-style
/// slice and returns the textual report (or an error).
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(argv)?;
    run_command(&parsed)
}

/// Usage text printed for `--help` or on argument errors.
pub const USAGE: &str = "\
entmatcher <command> [options]

commands:
  generate  --preset <D-Z|D-J|D-F|S-F|S-D|S-W|S-Y|D-W|D-Y|DBP+|FB-DBP>
            [--scale F] [--seed N] --out DIR
            Generate a synthetic benchmark pair as OpenEA-style TSV.
  stats     --data DIR
            Print dataset statistics (Table 3 row) and degree profiles.
  encode    --data DIR --encoder <gcn|rrea|transe|name|fused> [--seed N]
            [--trace FILE] --out DIR
            Learn unified embeddings; writes source.emb / target.emb.
  match     --data DIR --embeddings DIR
            --algorithm <dinf|csls|rinf|rinf-wr|rinf-pb|sinkhorn|hungarian|smat|rl>
            [--candidates <exact|lsh|ivf>] [--nlist N] [--nprobe N]
            [--shortlist K] [--precision <f32|f16|int8>]
            [--stream-chunk ROWS] [--dummies] [--trace FILE] --out FILE
            Match the test candidates; writes predicted pairs as TSV.
            --candidates selects the similarity stage: exact (dense, the
            default), lsh (bucket blocking) or ivf (ANN index; --nlist
            inverted lists, --nprobe probed per source, 0 = auto), each
            keeping the top --shortlist scores per source (cosine only).
            --precision stores the cosine similarity stage's packed
            target operand (and IVF posting lists) at a reduced width:
            f16 halves it, int8 quarters it (per-row symmetric scales;
            scores shift by at most scale/2 per element). f32 (default)
            is bit-exact. --stream-chunk loads embedding snapshots
            through the chunked reader, ROWS rows at a time, bounding
            load-time auxiliary memory by the chunk instead of the file.
  eval      --data DIR --pairs FILE
            Score predicted pairs against the gold test links.
  serve     --embeddings DIR [--addr HOST:PORT] [--precision <f32|f16|int8>]
            [--candidates <exact|ivf>] [--nlist N] [--nprobe N]
            [--stream-chunk ROWS] [--cache N] [--batch-max N]
            [--batch-wait-us USEC] [--k-max N] [--max-conns N]
            [--max-inflight N] [--trace FILE]
            Serve online top-k matching over HTTP: POST /match/topk
            (JSON {\"ids\": [..]} or {\"queries\": [[..]]} plus \"k\")
            shares one keep-alive listener with GET /metrics and GET
            /healthz (persistent connections; idle ones are evicted
            after 5 s). Concurrent requests coalesce into single
            fused-GEMM passes (up to --batch-max per pass, lingering
            --batch-wait-us); --cache bounds the LRU top-k cache (0
            disables). Admission control: --max-conns (default 256)
            caps open connections (503 + Retry-After beyond it) and
            --max-inflight (default 256, 0 = unlimited) caps
            concurrently-inflight requests (429 + Retry-After). Rows
            are L2-normalized at load, so scores are cosine
            similarities.
            Every response carries a req_id; with --trace each request
            records a serve.request span tree tagged with it, and
            ENTMATCHER_SLOW_MS=N logs slower requests as JSON lines on
            stderr. POST /shutdown stops the server (and flushes the
            --trace export). --addr defaults to 127.0.0.1:0; the bound
            address prints to stderr.
  trace     --file FILE [--chrome OUT.json]
            Render an exported JSON trace as an indented span tree with
            counters and histogram quantiles, or convert it to Chrome
            trace_event JSON (open OUT.json in ui.perfetto.dev).

observability:
  Every command accepts the flight-recorder flags:
    --trace FILE     Record telemetry (spans, counters, histograms) for
                     the command and export it to FILE as JSON. With
                     ENTMATCHER_TRACE_FORMAT=chrome the export is Chrome
                     trace_event JSON instead of the native document.
    --profile FILE   Sample every thread's open span stack while the
                     command runs and write collapsed ('folded') stacks
                     to FILE for flamegraph tooling. Sampling rate via
                     ENTMATCHER_PROFILE_HZ (default 97).
    --metrics ADDR   Serve live Prometheus metrics on ADDR (e.g.
                     127.0.0.1:9184; port 0 picks one) for the duration
                     of the command: curl http://ADDR/metrics. The bound
                     address prints to stderr; ENTMATCHER_METRICS_ADDR
                     is the env equivalent, and the server lingers
                     ENTMATCHER_METRICS_LINGER_MS after the command.
                     RSS is always exported; heap gauges appear when
                     ENTMATCHER_MEM counting is on.
    --mem-profile FILE
                     Turn on the counting allocator and write a sampled
                     allocation profile as collapsed stacks (span-stack
                     names weighted by estimated bytes) to FILE —
                     flamegraph.pl / speedscope render it directly.
                     ENTMATCHER_MEM_SAMPLE sets the sampling rate
                     (sample every Nth allocation, default 61).
  Alternatively set ENTMATCHER_TRACE=FILE to record the whole process and
  dump the trace at exit, or ENTMATCHER_TRACE=1 to record without dumping.
  Unset (or 0), telemetry is off and costs one atomic load per site.
  ENTMATCHER_MEM=1 enables measured memory observability: every span in
  a trace gains heap_allocated / heap_live_peak bytes from the counting
  allocator, `match` reports its measured peak next to the modeled one,
  and /metrics exports live heap gauges. Off (the default), the
  allocator counts nothing and writes no counters at all.
  ENTMATCHER_ENV_DUMP=1 prints every recognized ENTMATCHER_* switch and
  its value to stderr at exit (unset / empty / 0 all mean disabled —
  the shared convention across all switches).
";
