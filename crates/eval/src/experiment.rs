//! Experiment grid runner: one cell = (KG pair, encoder setting, matching
//! algorithm) -> quality + efficiency numbers. Drives every table of the
//! reproduction.

use crate::encoders::EncoderKind;
use crate::metrics::{evaluate_links, AlignmentScores};
use crate::task::MatchTask;
use entmatcher_core::spec::OneToOne;
use entmatcher_core::AlgorithmPreset;
use entmatcher_embed::UnifiedEmbeddings;
use entmatcher_graph::KgPair;
use entmatcher_support::json::{FromJson, Json, JsonError, Map, ToJson};
use entmatcher_support::telemetry;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Result of one experiment cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Benchmark pair id (e.g. `"D-Z"`).
    pub dataset: String,
    /// Encoder prefix (`G-`, `R-`, `N-`, `NR-`).
    pub encoder: String,
    /// Algorithm name (`DInf`, `CSLS`, ...).
    pub algorithm: String,
    /// Quality metrics against the test gold links.
    pub scores: AlignmentScores,
    /// Wall time of the matching pipeline (similarity + optimize + match).
    pub elapsed: Duration,
    /// Estimated peak auxiliary memory in bytes.
    pub peak_aux_bytes: usize,
}

// `elapsed` travels as fractional seconds so reports stay readable.
impl ToJson for CellResult {
    fn to_json(&self) -> Json {
        let mut m = Map::new();
        m.insert("dataset", &self.dataset);
        m.insert("encoder", &self.encoder);
        m.insert("algorithm", &self.algorithm);
        m.insert("scores", &self.scores);
        m.insert("elapsed", self.elapsed.as_secs_f64());
        m.insert("peak_aux_bytes", self.peak_aux_bytes);
        Json::Obj(m)
    }
}

impl FromJson for CellResult {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CellResult {
            dataset: v.field("dataset")?,
            encoder: v.field("encoder")?,
            algorithm: v.field("algorithm")?,
            scores: v.field("scores")?,
            elapsed: Duration::from_secs_f64(v.field("elapsed")?),
            peak_aux_bytes: v.field("peak_aux_bytes")?,
        })
    }
}

/// Runs one algorithm on a prepared pair + embeddings. `pad_dummies`
/// enables the §5.1 dummy-node protocol for the hard-1-to-1 matchers when
/// the candidate sides are unbalanced.
pub fn run_cell(
    pair: &KgPair,
    encoder_prefix: &str,
    emb: &UnifiedEmbeddings,
    preset: AlgorithmPreset,
    pad_dummies: bool,
) -> CellResult {
    let _cell_span = telemetry::span(format!(
        "cell:{}/{}{}",
        pair.id,
        encoder_prefix,
        preset.name()
    ));
    let task = MatchTask::from_pair(pair);
    let (source, target) = task.candidate_embeddings(emb);
    let ctx = task.context(pair);
    let mut pipeline = preset.build();
    if pad_dummies && preset.spec().one_to_one == OneToOne::Yes {
        pipeline = pipeline.with_dummies(0.9);
    }
    let report = pipeline.execute(&source, &target, &ctx);
    let links = task.matching_to_links(&report.matching);
    let scores = evaluate_links(&links, &task.gold);
    CellResult {
        dataset: pair.id.clone(),
        encoder: encoder_prefix.to_owned(),
        algorithm: preset.name().to_owned(),
        scores,
        elapsed: report.elapsed,
        peak_aux_bytes: report.peak_aux_bytes,
    }
}

/// Grid driver: encodes a pair once per encoder setting, then evaluates a
/// list of algorithms against the shared embeddings. Algorithm cells run
/// concurrently on a small worker pool (each cell's kernels are themselves
/// row-parallel, so two workers saturate without oversubscribing).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentGrid {
    /// Number of algorithm cells evaluated concurrently.
    pub workers: usize,
    /// Enable the dummy-node protocol (unmatchable setting).
    pub pad_dummies: bool,
    /// When set, a reporter thread prints a progress/ETA line to stderr at
    /// this interval while cells run (long table sweeps otherwise look
    /// hung). `None` keeps the grid silent.
    pub progress: Option<Duration>,
}

impl Default for ExperimentGrid {
    fn default() -> Self {
        ExperimentGrid {
            workers: 2,
            pad_dummies: false,
            progress: None,
        }
    }
}

/// One progress report for a running grid, e.g.
/// `grid: 3/9 cells (33%), elapsed 12.3s, eta 24.6s, mean cell 4.1s`.
/// `cell_time` is the summed wall time of the `done` finished cells (the
/// per-cell mean; ETA comes from reporter-observed elapsed time, which
/// accounts for worker parallelism). Before any cell finishes both
/// estimates print as `?`.
pub fn progress_line(done: usize, total: usize, elapsed: Duration, cell_time: Duration) -> String {
    let pct = if total == 0 {
        100
    } else {
        (100 * done) / total
    };
    let (eta, mean) = if done == 0 {
        ("?".to_owned(), "?".to_owned())
    } else {
        let eta = elapsed.as_secs_f64() * (total - done) as f64 / done as f64;
        let mean = cell_time.as_secs_f64() / done as f64;
        (format!("{eta:.1}s"), format!("{mean:.1}s"))
    };
    format!(
        "grid: {done}/{total} cells ({pct}%), elapsed {:.1}s, eta {eta}, mean cell {mean}",
        elapsed.as_secs_f64()
    )
}

impl ExperimentGrid {
    /// Runs `presets` against one `(pair, encoder)` setting, preserving
    /// preset order in the output.
    pub fn run(
        &self,
        pair: &KgPair,
        kind: EncoderKind,
        presets: &[AlgorithmPreset],
    ) -> Vec<CellResult> {
        let emb = kind.encode(pair);
        self.run_with_embeddings(pair, kind.prefix(), &emb, presets)
    }

    /// Like [`Self::run`] but with pre-computed embeddings (lets callers
    /// reuse one encoding across algorithm sweeps).
    pub fn run_with_embeddings(
        &self,
        pair: &KgPair,
        encoder_prefix: &str,
        emb: &UnifiedEmbeddings,
        presets: &[AlgorithmPreset],
    ) -> Vec<CellResult> {
        let results: Mutex<Vec<Option<CellResult>>> = Mutex::new(vec![None; presets.len()]);
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let cell_ns = AtomicU64::new(0);
        let workers = self.workers.clamp(1, presets.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let next = &next;
                let done = &done;
                let cell_ns = &cell_ns;
                let results = &results;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= presets.len() {
                        break;
                    }
                    let cell = run_cell(pair, encoder_prefix, emb, presets[i], self.pad_dummies);
                    // Progress signal for long grids: one tick per finished
                    // cell, readable from another thread via `snapshot()`.
                    telemetry::add("grid.heartbeat", 1);
                    cell_ns.fetch_add(cell.elapsed.as_nanos() as u64, Ordering::Relaxed);
                    results.lock().expect("no panics hold the lock")[i] = Some(cell);
                    done.fetch_add(1, Ordering::Release);
                });
            }
            if let Some(interval) = self.progress.filter(|_| !presets.is_empty()) {
                let done = &done;
                let cell_ns = &cell_ns;
                let total = presets.len();
                scope.spawn(move || {
                    let start = Instant::now();
                    // Sleep in short slices so the reporter exits promptly
                    // once the last cell lands instead of holding the scope
                    // open for a full interval.
                    'report: loop {
                        let mut slept = Duration::ZERO;
                        while slept < interval {
                            if done.load(Ordering::Acquire) >= total {
                                break 'report;
                            }
                            let step = (interval - slept).min(Duration::from_millis(25));
                            std::thread::sleep(step);
                            slept += step;
                        }
                        eprintln!(
                            "{}",
                            progress_line(
                                done.load(Ordering::Acquire),
                                total,
                                start.elapsed(),
                                Duration::from_nanos(cell_ns.load(Ordering::Relaxed)),
                            )
                        );
                    }
                });
            }
        });
        results
            .into_inner()
            .expect("no panics hold the lock")
            .into_iter()
            .map(|c| c.expect("every cell computed"))
            .collect()
    }
}

/// Computes the "Imp." column of Tables 4–6: the mean relative improvement
/// of an algorithm's F1 over the DInf baseline across datasets, in percent.
pub fn improvement_over_baseline(algorithm_f1: &[f64], baseline_f1: &[f64]) -> f64 {
    assert_eq!(algorithm_f1.len(), baseline_f1.len());
    if algorithm_f1.is_empty() {
        return 0.0;
    }
    let rel: f64 = algorithm_f1
        .iter()
        .zip(baseline_f1.iter())
        .map(|(&a, &b)| if b > 0.0 { (a - b) / b } else { 0.0 })
        .sum();
    100.0 * rel / algorithm_f1.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use entmatcher_data::{generate_pair, PairSpec};

    fn small_pair() -> KgPair {
        generate_pair(&PairSpec {
            classes: 150,
            fillers_per_kg: 0,
            latent_edges: 1000,
            relations: 12,
            heterogeneity: 0.3,
            ..Default::default()
        })
    }

    #[test]
    fn run_cell_produces_sane_scores() {
        let pair = small_pair();
        let emb = EncoderKind::Rrea.encode(&pair);
        let cell = run_cell(&pair, "R-", &emb, AlgorithmPreset::DInf, false);
        assert_eq!(cell.dataset, "toy");
        assert_eq!(cell.algorithm, "DInf");
        // 1-to-1 full-coverage setting: P == R == F1.
        assert!((cell.scores.precision - cell.scores.recall).abs() < 1e-12);
        assert!(
            cell.scores.f1 > 0.3,
            "RREA+DInf should clear 0.3 on an easy pair"
        );
        assert!(cell.peak_aux_bytes > 0);
    }

    #[test]
    fn grid_preserves_preset_order_and_matches_serial() {
        let pair = small_pair();
        let emb = EncoderKind::Gcn.encode(&pair);
        let presets = [
            AlgorithmPreset::DInf,
            AlgorithmPreset::Csls,
            AlgorithmPreset::Hungarian,
        ];
        let grid = ExperimentGrid {
            workers: 3,
            ..Default::default()
        };
        let results = grid.run_with_embeddings(&pair, "G-", &emb, &presets);
        assert_eq!(results.len(), 3);
        for (r, p) in results.iter().zip(presets.iter()) {
            assert_eq!(r.algorithm, p.name());
            let serial = run_cell(&pair, "G-", &emb, *p, false);
            assert_eq!(r.scores.f1, serial.scores.f1, "{} differs", p.name());
        }
    }

    #[test]
    fn grid_emits_cell_spans_and_heartbeat() {
        let _guard = crate::telemetry_test_lock();
        telemetry::reset();
        telemetry::set_enabled(true);
        let pair = small_pair();
        let emb = EncoderKind::Gcn.encode(&pair);
        let presets = [
            AlgorithmPreset::DInf,
            AlgorithmPreset::Csls,
            AlgorithmPreset::StableMarriage,
        ];
        ExperimentGrid::default().run_with_embeddings(&pair, "G-", &emb, &presets);
        let trace = telemetry::snapshot();
        telemetry::set_enabled(false);
        assert!(trace.counter("grid.heartbeat").unwrap_or(0) >= 3);
        for p in &presets {
            let name = format!("cell:{}/G-{}", pair.id, p.name());
            let cell = trace.span(&name).unwrap_or_else(|| panic!("{name} span"));
            // Each cell wraps a full pipeline execution, recorded as a
            // child span of the cell (workers make cells trace roots).
            assert!(trace
                .children(cell.id)
                .iter()
                .any(|s| s.name == "pipeline"));
        }
    }

    #[test]
    fn progress_line_formats_and_estimates() {
        // Nothing done yet: percent 0, unknown ETA and mean.
        let line = progress_line(0, 9, Duration::from_millis(100), Duration::ZERO);
        assert_eq!(line, "grid: 0/9 cells (0%), elapsed 0.1s, eta ?, mean cell ?");
        // 3/9 done in 12.3s -> eta = 12.3 * 6/3 = 24.6s; mean cell from the
        // summed per-cell wall time, not the parallel elapsed time.
        let line = progress_line(
            3,
            9,
            Duration::from_secs_f64(12.3),
            Duration::from_secs_f64(12.3),
        );
        assert_eq!(
            line,
            "grid: 3/9 cells (33%), elapsed 12.3s, eta 24.6s, mean cell 4.1s"
        );
        // Finished grid: eta 0, degenerate total guarded.
        let line = progress_line(4, 4, Duration::from_secs(8), Duration::from_secs(8));
        assert!(line.starts_with("grid: 4/4 cells (100%), elapsed 8.0s, eta 0.0s"));
        assert!(progress_line(0, 0, Duration::ZERO, Duration::ZERO).contains("(100%)"));
    }

    #[test]
    fn grid_with_progress_reporter_terminates_and_matches_silent_run() {
        let pair = small_pair();
        let emb = EncoderKind::Gcn.encode(&pair);
        let presets = [AlgorithmPreset::DInf, AlgorithmPreset::Csls];
        // A short interval forces several reporter wake-ups mid-run; the
        // scope only exits once the reporter thread does, so completion IS
        // the termination assertion.
        let grid = ExperimentGrid {
            progress: Some(Duration::from_millis(5)),
            ..Default::default()
        };
        let results = grid.run_with_embeddings(&pair, "G-", &emb, &presets);
        let silent = ExperimentGrid::default().run_with_embeddings(&pair, "G-", &emb, &presets);
        assert_eq!(results.len(), 2);
        for (a, b) in results.iter().zip(silent.iter()) {
            assert_eq!(a.scores.f1, b.scores.f1, "{} differs", a.algorithm);
        }
    }

    #[test]
    fn cell_spans_carry_worker_thread_lanes() {
        let _guard = crate::telemetry_test_lock();
        telemetry::reset();
        telemetry::set_enabled(true);
        let pair = small_pair();
        let emb = EncoderKind::Gcn.encode(&pair);
        let presets = [AlgorithmPreset::DInf, AlgorithmPreset::Csls];
        ExperimentGrid::default().run_with_embeddings(&pair, "G-", &emb, &presets);
        let trace = telemetry::snapshot();
        telemetry::set_enabled(false);
        // Every cell ran on a scope worker, so its span records a real
        // thread lane (lanes are 1-based) shared with its pipeline child —
        // that is what groups the Perfetto view into per-worker rows.
        for span in trace.spans_named("cell:toy/G-DInf") {
            assert!(span.tid >= 1, "cell span missing thread lane");
            let child = trace
                .children(span.id)
                .into_iter()
                .find(|s| s.name == "pipeline")
                .expect("pipeline child");
            assert_eq!(child.tid, span.tid, "stage ran on the cell's thread");
        }
    }

    #[test]
    fn improvement_math() {
        let imp = improvement_over_baseline(&[0.6, 0.8], &[0.5, 0.4]);
        // (0.1/0.5 + 0.4/0.4) / 2 = (0.2 + 1.0)/2 = 60%.
        assert!((imp - 60.0).abs() < 1e-9);
        assert_eq!(improvement_over_baseline(&[], &[]), 0.0);
    }
}
