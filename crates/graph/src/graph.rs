//! The immutable [`KnowledgeGraph`] and its builder.

use crate::adjacency::Csr;
use crate::error::GraphError;
use crate::ids::{EntityId, RelationId};
use crate::interner::Interner;
use crate::triple::Triple;
use crate::Result;
use entmatcher_support::impl_json_struct;

/// An immutable knowledge graph: interned symbols, a triple list, and a
/// frozen CSR adjacency.
///
/// Graphs are constructed through [`KgBuilder`]; freezing at build time means
/// every downstream consumer (encoders, statistics, generators) can assume
/// the adjacency is consistent with the triple list.
#[derive(Debug, Clone)]
pub struct KnowledgeGraph {
    name: String,
    entities: Interner,
    relations: Interner,
    triples: Vec<Triple>,
    adjacency: Csr,
}

impl_json_struct!(KnowledgeGraph {
    name,
    entities,
    relations,
    triples,
    adjacency
});

impl KnowledgeGraph {
    /// Human-readable graph name (e.g. `"DBpedia(en)"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of distinct relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Number of triples.
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    /// All triples.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Frozen adjacency structure.
    pub fn adjacency(&self) -> &Csr {
        &self.adjacency
    }

    /// Resolves an entity id to its symbol.
    pub fn entity_name(&self, e: EntityId) -> Option<&str> {
        self.entities.resolve(e.0)
    }

    /// Resolves a relation id to its symbol.
    pub fn relation_name(&self, r: RelationId) -> Option<&str> {
        self.relations.resolve(r.0)
    }

    /// Looks up an entity by symbol.
    pub fn entity_id(&self, name: &str) -> Option<EntityId> {
        self.entities.get(name).map(EntityId)
    }

    /// Looks up a relation by symbol.
    pub fn relation_id(&self, name: &str) -> Option<RelationId> {
        self.relations.get(name).map(RelationId)
    }

    /// Iterates over `(EntityId, name)` in id order.
    pub fn entities(&self) -> impl Iterator<Item = (EntityId, &str)> {
        self.entities.iter().map(|(id, n)| (EntityId(id), n))
    }

    /// Mean undirected entity degree (Table 3's "Avg. degree" per KG).
    pub fn avg_degree(&self) -> f64 {
        self.adjacency.avg_degree()
    }

    /// Rebuilds transient lookup state after deserialization.
    pub fn rehydrate(&mut self) {
        self.entities.rebuild_index();
        self.relations.rebuild_index();
    }
}

/// Incremental builder for [`KnowledgeGraph`].
#[derive(Debug, Default)]
pub struct KgBuilder {
    name: String,
    entities: Interner,
    relations: Interner,
    triples: Vec<Triple>,
}

impl KgBuilder {
    /// Starts a builder for a graph called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KgBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Pre-registers an entity symbol (used for isolated entities, which
    /// appear in alignment files but not necessarily in any triple).
    pub fn add_entity(&mut self, name: &str) -> EntityId {
        EntityId(self.entities.intern(name))
    }

    /// Pre-registers a relation symbol. Needed when triples are added by id
    /// via [`Self::add_triple_ids`].
    pub fn add_relation(&mut self, name: &str) -> RelationId {
        RelationId(self.relations.intern(name))
    }

    /// Adds a triple given symbolic endpoints, interning as needed.
    pub fn add_triple(&mut self, subject: &str, predicate: &str, object: &str) {
        let s = EntityId(self.entities.intern(subject));
        let p = RelationId(self.relations.intern(predicate));
        let o = EntityId(self.entities.intern(object));
        self.triples.push(Triple::new(s, p, o));
    }

    /// Adds a triple with pre-interned ids; validated at [`Self::build`].
    pub fn add_triple_ids(&mut self, t: Triple) {
        self.triples.push(t);
    }

    /// Number of entities interned so far.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Triples added so far (ids are not yet validated).
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Number of triples added so far.
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    /// Validates all ids and freezes the graph (building CSR adjacency).
    pub fn build(self) -> Result<KnowledgeGraph> {
        let n = self.entities.len() as u32;
        let r = self.relations.len() as u32;
        for t in &self.triples {
            if t.subject.0 >= n {
                return Err(GraphError::UnknownEntity(t.subject.0));
            }
            if t.object.0 >= n {
                return Err(GraphError::UnknownEntity(t.object.0));
            }
            if t.predicate.0 >= r {
                return Err(GraphError::UnknownRelation(t.predicate.0));
            }
        }
        let adjacency = Csr::build(self.entities.len(), &self.triples);
        Ok(KnowledgeGraph {
            name: self.name,
            entities: self.entities,
            relations: self.relations,
            triples: self.triples,
            adjacency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_interns_and_freezes() {
        let mut b = KgBuilder::new("toy");
        b.add_triple("a", "likes", "b");
        b.add_triple("b", "likes", "c");
        b.add_triple("a", "knows", "c");
        let kg = b.build().unwrap();
        assert_eq!(kg.name(), "toy");
        assert_eq!(kg.num_entities(), 3);
        assert_eq!(kg.num_relations(), 2);
        assert_eq!(kg.num_triples(), 3);
        let a = kg.entity_id("a").unwrap();
        assert_eq!(kg.adjacency().degree(a), 2);
        assert_eq!(kg.entity_name(a), Some("a"));
    }

    #[test]
    fn isolated_entity_is_kept() {
        let mut b = KgBuilder::new("toy");
        b.add_entity("ghost");
        b.add_triple("a", "r", "b");
        let kg = b.build().unwrap();
        assert_eq!(kg.num_entities(), 3);
        let ghost = kg.entity_id("ghost").unwrap();
        assert_eq!(kg.adjacency().degree(ghost), 0);
    }

    #[test]
    fn build_rejects_dangling_ids() {
        let mut b = KgBuilder::new("bad");
        b.add_entity("only");
        b.add_triple_ids(Triple::new(EntityId(0), RelationId(0), EntityId(7)));
        assert!(matches!(b.build(), Err(GraphError::UnknownEntity(7))));

        let mut b2 = KgBuilder::new("bad2");
        b2.add_entity("x");
        b2.add_triple_ids(Triple::new(EntityId(0), RelationId(3), EntityId(0)));
        assert!(matches!(b2.build(), Err(GraphError::UnknownRelation(3))));
    }

    #[test]
    fn avg_degree_reported() {
        let mut b = KgBuilder::new("deg");
        b.add_triple("a", "r", "b");
        b.add_triple("b", "r", "c");
        let kg = b.build().unwrap();
        // 2 triples * 2 half-edges / 3 entities.
        assert!((kg.avg_degree() - 4.0 / 3.0).abs() < 1e-9);
    }
}
