//! Sub-quadratic candidate generation.
//!
//! Every matcher in the crate ultimately consumes "for each source entity,
//! a scored list of plausible targets". The dense pipeline materializes
//! that list implicitly as a full `n_s x n_t` score matrix; this module
//! makes it explicit as a [`Shortlist`] and unifies the three ways of
//! producing one behind [`CandidateSource`]:
//!
//! * [`ExactStreaming`] — the blocked-GEMM fused top-k pass. Exact, O(n²)
//!   time, O(n·k) memory. This is the recall oracle for the other two.
//! * [`LshCandidates`] — [`crate::blocking::LshBlocker`] buckets rescored
//!   with exact dot products. Sub-quadratic, recall depends on bits/tables.
//! * [`IvfCandidates`] — the [`IvfIndex`] IVF-flat index. Sub-quadratic,
//!   recall controlled by `nprobe`; `nprobe == nlist` is bitwise-exact.
//!
//! All sources speak raw dot products (the `linalg::fused` convention):
//! callers normalize rows first when they mean cosine. Shortlists are
//! best-first, so `shortlist[i][0]` is source `i`'s greedy pick, and the
//! consumers in this module (greedy, stable marriage, shortlist-CSLS,
//! densification for the O(n²) matchers) never touch a dense matrix except
//! where the downstream algorithm itself is inherently dense.

pub mod ivf;
pub mod kmeans;

use crate::blocking::LshBlocker;
use crate::matching::Matching;
use entmatcher_linalg::{dot, fused_topk, Matrix, TopKAccumulator};
use entmatcher_support::telemetry;

pub use ivf::{IvfIndex, IvfParams};

/// Per-source scored candidate lists, best first. `shortlist[i]` holds up
/// to `k` `(target_id, score)` pairs for source row `i`.
pub type Shortlist = Vec<Vec<(u32, f32)>>;

/// A strategy for producing per-source candidate shortlists.
pub trait CandidateSource: Send + Sync {
    /// Stable name for traces and reports.
    fn name(&self) -> &'static str;

    /// Top candidates of each `source` row against the `target` rows,
    /// scored by dot product, best first. Lists may be shorter than `k`
    /// (blocking can abstain) but never longer.
    fn shortlist(&self, source: &Matrix, target: &Matrix, k: usize) -> Shortlist;
}

/// Exact candidate generation: the fused blocked-GEMM top-k pass over the
/// full target side. The oracle the approximate sources are measured
/// against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactStreaming;

impl CandidateSource for ExactStreaming {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn shortlist(&self, source: &Matrix, target: &Matrix, k: usize) -> Shortlist {
        fused_topk(source, target, k).expect("pipeline guarantees matching dims")
    }
}

/// LSH blocking rescored into a shortlist: bucket candidates from
/// [`LshBlocker::block`] get exact dot-product scores and per-source
/// top-k selection. Sources whose buckets are empty get empty lists.
#[derive(Debug, Clone, Default)]
pub struct LshCandidates {
    /// The underlying blocker (bits / tables / seed).
    pub blocker: LshBlocker,
}

impl CandidateSource for LshCandidates {
    fn name(&self) -> &'static str {
        "lsh"
    }

    fn shortlist(&self, source: &Matrix, target: &Matrix, k: usize) -> Shortlist {
        let blocks = self.blocker.block(source, target);
        let mut candidates_total = 0u64;
        let out: Shortlist = blocks
            .iter()
            .enumerate()
            .map(|(i, cands)| {
                candidates_total += cands.len() as u64;
                let row = source.row(i);
                let mut acc = TopKAccumulator::new(k);
                for &j in cands {
                    acc.push(j, dot(row, target.row(j as usize)));
                }
                acc.into_sorted_desc()
            })
            .collect();
        telemetry::add("ann.candidates", candidates_total);
        out
    }
}

/// IVF-flat candidate generation: builds an [`IvfIndex`] over the target
/// side per call, then probes it for every source row.
#[derive(Debug, Clone, Copy, Default)]
pub struct IvfCandidates {
    /// Index construction and probing knobs.
    pub params: IvfParams,
}

impl CandidateSource for IvfCandidates {
    fn name(&self) -> &'static str {
        "ivf"
    }

    fn shortlist(&self, source: &Matrix, target: &Matrix, k: usize) -> Shortlist {
        let index = IvfIndex::build(target, &self.params);
        let nprobe = if self.params.nprobe == 0 {
            index.default_nprobe()
        } else {
            self.params.nprobe
        };
        index.search(source, k, nprobe)
    }
}

/// Greedy matching on a shortlist: each source takes its best-scoring
/// candidate (lists are best-first, so that is the head), `None` when the
/// list is empty.
pub fn greedy_on_shortlist(shortlist: &Shortlist) -> Matching {
    Matching::new(
        shortlist
            .iter()
            .map(|hits| hits.first().map(|&(j, _)| j))
            .collect(),
    )
}

/// CSLS-corrected greedy matching on shortlists.
///
/// `st` is the source→target shortlist, `ts` the target→source shortlist
/// (the same [`CandidateSource`] called in the reverse direction); `k` is
/// the CSLS neighbourhood size. Each side's hubness penalty is the mean of
/// its top-`k` shortlist scores — the shortlist approximation of the dense
/// CSLS `phi` — and each source picks the candidate maximizing
/// `(2s - phi_s) - phi_t`, ties to the lowest target id.
pub fn csls_on_shortlist(st: &Shortlist, ts: &Shortlist, k: usize) -> Matching {
    let phi = |hits: &Vec<(u32, f32)>| -> f32 {
        let take = hits.len().min(k.max(1));
        if take == 0 {
            return 0.0;
        }
        hits[..take].iter().map(|&(_, s)| s).sum::<f32>() / take as f32
    };
    let phi_t: Vec<f32> = ts.iter().map(phi).collect();
    let assignment = st
        .iter()
        .map(|hits| {
            let phi_s = phi(hits);
            let mut best: Option<(u32, f32)> = None;
            for &(j, s) in hits {
                let corrected = (2.0 * s - phi_s) - phi_t.get(j as usize).copied().unwrap_or(0.0);
                let better = match best {
                    None => true,
                    Some((bj, bc)) => corrected > bc || (corrected == bc && j < bj),
                };
                if better {
                    best = Some((j, corrected));
                }
            }
            best.map(|(j, _)| j)
        })
        .collect();
    Matching::new(assignment)
}

/// One-to-one stable matching on a shortlist (Gale–Shapley, sources
/// propose). Source preference order is the shortlist order; a target
/// prefers the higher-scoring proposal and keeps its current partner on
/// ties. Sources that exhaust their lists stay unmatched — with a
/// shortlist there may be no acceptable target left, unlike the dense
/// stable matcher which can always keep proposing.
pub fn stable_on_shortlist(shortlist: &Shortlist, n_t: usize) -> Matching {
    let n_s = shortlist.len();
    let mut next_choice = vec![0usize; n_s];
    let mut engaged_to: Vec<Option<(u32, f32)>> = vec![None; n_t]; // (source, score)
    let mut assignment: Vec<Option<u32>> = vec![None; n_s];
    let mut free: Vec<u32> = (0..n_s as u32).rev().collect();
    while let Some(i) = free.pop() {
        let hits = &shortlist[i as usize];
        let mut matched = false;
        while next_choice[i as usize] < hits.len() {
            let (j, s) = hits[next_choice[i as usize]];
            next_choice[i as usize] += 1;
            let slot = &mut engaged_to[j as usize];
            match *slot {
                None => {
                    *slot = Some((i, s));
                    assignment[i as usize] = Some(j);
                    matched = true;
                    break;
                }
                Some((holder, held)) if s > held => {
                    *slot = Some((i, s));
                    assignment[i as usize] = Some(j);
                    assignment[holder as usize] = None;
                    free.push(holder);
                    matched = true;
                    break;
                }
                Some(_) => {}
            }
        }
        if !matched {
            assignment[i as usize] = None;
        }
    }
    Matching::new(assignment)
}

/// Expands a shortlist into a dense `n_s x n_t` score matrix for the
/// inherently dense matchers (Hungarian, Sinkhorn, RL). Non-candidate
/// cells get `fill` (pass something below every real score, e.g.
/// [`densify_fill`]); candidates get their exact shortlist scores.
///
/// This reintroduces O(n_s * n_t) memory — acceptable for matchers that
/// are Ω(n²) anyway, pointless for greedy/stable which have sparse-native
/// consumers above.
pub fn densify_shortlist(shortlist: &Shortlist, n_t: usize, fill: f32) -> Matrix {
    let mut m = Matrix::from_fn(shortlist.len(), n_t, |_, _| fill);
    for (i, hits) in shortlist.iter().enumerate() {
        let row = m.row_mut(i);
        for &(j, s) in hits {
            row[j as usize] = s;
        }
    }
    m
}

/// A fill value strictly below every score in the shortlist (1.0 below the
/// minimum, or 0.0 for an empty shortlist) so densified non-candidates
/// never outrank a real candidate.
pub fn densify_fill(shortlist: &Shortlist) -> f32 {
    shortlist
        .iter()
        .flatten()
        .map(|&(_, s)| s)
        .fold(f32::INFINITY, f32::min)
        .min(0.0)
        - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use entmatcher_data::{clustered_embeddings, EmbeddingSpec};

    fn pair(entities: usize, clusters: usize, seed: u64) -> (Matrix, Matrix) {
        let p = clustered_embeddings(&EmbeddingSpec {
            entities,
            dim: 16,
            clusters,
            spread: 0.25,
            noise: 0.05,
            seed,
        });
        (p.source, p.target)
    }

    #[test]
    fn exact_source_heads_are_argmaxes() {
        let (s, t) = pair(50, 5, 2);
        let shortlist = ExactStreaming.shortlist(&s, &t, 5);
        assert_eq!(shortlist.len(), 50);
        let greedy = greedy_on_shortlist(&shortlist);
        for (i, pick) in greedy.assignment().iter().enumerate() {
            let row = s.row(i);
            let best = (0..t.rows())
                .max_by(|&a, &b| {
                    dot(row, t.row(a))
                        .partial_cmp(&dot(row, t.row(b)))
                        .unwrap()
                })
                .unwrap() as u32;
            assert_eq!(*pick, Some(best), "source {i}");
        }
    }

    #[test]
    fn all_sources_agree_on_easy_data() {
        // With tight clusters and identity gold, exact / LSH / IVF should
        // all put the true match at the head for almost every source.
        let (s, t) = pair(200, 10, 6);
        let sources: Vec<Box<dyn CandidateSource>> = vec![
            Box::new(ExactStreaming),
            Box::new(LshCandidates::default()),
            Box::new(IvfCandidates::default()),
        ];
        for src in sources {
            let m = greedy_on_shortlist(&src.shortlist(&s, &t, 10));
            let correct = m
                .assignment()
                .iter()
                .enumerate()
                .filter(|(i, pick)| **pick == Some(*i as u32))
                .count();
            assert!(
                correct > 170,
                "{} source found only {correct}/200 identity matches",
                src.name()
            );
        }
    }

    #[test]
    fn csls_on_shortlist_penalizes_hubs() {
        // Target 0 is a hub: it outranks target 1 for *both* sources
        // (s1·t0 = 0.818 > s1·t1 = 0.8). CSLS's neighbourhood penalty
        // must push source 1 back to its own target.
        let s = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.6, 0.8]).unwrap();
        let t = Matrix::from_vec(2, 2, vec![0.95, 0.31, 0.0, 1.0]).unwrap();
        let st = ExactStreaming.shortlist(&s, &t, 2);
        let ts = ExactStreaming.shortlist(&t, &s, 2);
        let plain = greedy_on_shortlist(&st);
        let csls = csls_on_shortlist(&st, &ts, 1);
        // Sanity: dense greedy collapses onto the hub.
        assert_eq!(plain.assignment()[0], plain.assignment()[1]);
        assert_ne!(csls.assignment()[0], csls.assignment()[1]);
    }

    #[test]
    fn stable_on_shortlist_resolves_contention() {
        // Both sources prefer target 0; the stronger claim wins and the
        // loser falls through to its second choice.
        let shortlist: Shortlist = vec![
            vec![(0, 0.9), (1, 0.5)],
            vec![(0, 0.8), (1, 0.7)],
        ];
        let m = stable_on_shortlist(&shortlist, 2);
        assert_eq!(m.assignment(), &[Some(0), Some(1)]);

        // Exhausted list -> unmatched.
        let short: Shortlist = vec![vec![(0, 0.9)], vec![(0, 0.8)]];
        let m = stable_on_shortlist(&short, 1);
        assert_eq!(m.assignment(), &[Some(0), None]);
    }

    #[test]
    fn densify_round_trips_scores() {
        let shortlist: Shortlist = vec![vec![(1, 0.5)], vec![]];
        let fill = densify_fill(&shortlist);
        assert!(fill < 0.5);
        let m = densify_shortlist(&shortlist, 3, fill);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.row(0), &[fill, 0.5, fill]);
        assert_eq!(m.row(1), &[fill, fill, fill]);
    }

    #[test]
    fn empty_inputs_yield_empty_shortlists() {
        let empty = Matrix::zeros(0, 8);
        let some = Matrix::from_fn(2, 8, |r, c| (r * 8 + c) as f32);
        for src in [
            Box::new(ExactStreaming) as Box<dyn CandidateSource>,
            Box::new(LshCandidates::default()),
            Box::new(IvfCandidates::default()),
        ] {
            assert!(src.shortlist(&empty, &some, 4).is_empty(), "{}", src.name());
            let lists = src.shortlist(&some, &empty, 4);
            assert_eq!(lists.len(), 2, "{}", src.name());
            assert!(lists.iter().all(Vec::is_empty), "{}", src.name());
        }
        assert_eq!(greedy_on_shortlist(&Vec::new()).assignment().len(), 0);
        assert_eq!(densify_fill(&Vec::new()), -1.0);
    }
}
