//! Zero-dependency support library for the `entmatcher` workspace.
//!
//! Every crate in this workspace builds with **no network access** and no
//! external crates. This crate supplies the four pieces of infrastructure
//! that would otherwise come from crates.io:
//!
//! - [`rng`] — a seeded, deterministic xoshiro256\*\*-style PRNG with a
//!   `rand`-shaped API (`StdRng`, `Rng`, `SeedableRng`, `SliceRandom`).
//! - [`json`] — a minimal JSON value, writer, and parser plus the
//!   [`json::ToJson`]/[`json::FromJson`] trait pair and the
//!   [`impl_json_struct!`]/[`impl_json_enum!`] derive-replacement macros.
//! - [`prop`] — a property-testing mini-harness with seeded generators,
//!   configurable case counts, failure-seed reporting, and size-directed
//!   input shrinking.
//! - [`bench`] — a tiny wall-clock benchmark harness for `harness = false`
//!   bench targets.
//! - [`alloc`] — a counting `GlobalAlloc` wrapper ([`alloc::CountingAlloc`],
//!   installed per binary) with per-scope heap attribution, RSS sampling,
//!   and a sampled allocation-site profiler — the measured-memory ground
//!   truth behind the telemetry spans' `heap_allocated`/`heap_live_peak`
//!   fields (`ENTMATCHER_MEM`).
//! - [`pool`] — a persistent, process-wide work-stealing worker pool
//!   (sized by `ENTMATCHER_THREADS` / available parallelism) that the
//!   row-parallel kernels run on, with panic propagation and telemetry
//!   integration.
//! - [`telemetry`] — structured spans, counters, and log-scale histograms
//!   with JSON trace export (the `ENTMATCHER_TRACE` / `--trace`
//!   observability layer every crate reports into), plus the
//!   flight-recorder surfaces: live Prometheus exposition
//!   ([`telemetry::expose`]), Chrome/Perfetto trace export
//!   ([`telemetry::chrome`]), and a span-stack sampling profiler
//!   ([`telemetry::profile`]).
//!
//! The API shapes deliberately mirror the external crates they replace so
//! that call sites migrate by swapping `use` lines, not rewriting bodies.

pub mod alloc;
pub mod bench;
pub mod json;
pub mod pool;
pub mod prop;
pub mod rng;
pub mod telemetry;
