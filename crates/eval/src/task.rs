//! The test-time matching task: candidate sets, index mapping, candidate
//! adjacency, and translation between matcher output and entity links.
//!
//! Following the paper's protocol, matching runs over the *test* portion
//! of the gold links (train/valid entities are excluded from the candidate
//! space) plus, in the unmatchable setting, the entities that have no
//! counterpart at all (§5.1).

use entmatcher_core::{MatchContext, Matching};
use entmatcher_embed::UnifiedEmbeddings;
use entmatcher_graph::{EntityId, KgPair, KnowledgeGraph, Link};
use entmatcher_linalg::Matrix;
use std::collections::HashMap;

/// One evaluation instance: candidate entity lists on both sides plus the
/// gold links to score against.
#[derive(Debug, Clone)]
pub struct MatchTask {
    /// Source candidates (row order of the candidate score matrix).
    pub source_candidates: Vec<EntityId>,
    /// Target candidates (column order).
    pub target_candidates: Vec<EntityId>,
    /// Gold links among the candidates (the test split).
    pub gold: entmatcher_graph::AlignmentSet,
    source_index: HashMap<EntityId, u32>,
    target_index: HashMap<EntityId, u32>,
}

impl MatchTask {
    /// Builds the standard task for a pair: test-link sources/targets plus
    /// any unmatchable entities recorded on the pair.
    pub fn from_pair(pair: &KgPair) -> Self {
        let test = pair.test_links();
        let mut source_candidates = test.sources();
        let mut target_candidates = test.targets();
        source_candidates.extend(pair.unmatchable_sources.iter().copied());
        target_candidates.extend(pair.unmatchable_targets.iter().copied());
        Self::new(source_candidates, target_candidates, test.clone())
    }

    /// Builds a task from explicit candidate lists.
    pub fn new(
        source_candidates: Vec<EntityId>,
        target_candidates: Vec<EntityId>,
        gold: entmatcher_graph::AlignmentSet,
    ) -> Self {
        let source_index = source_candidates
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, i as u32))
            .collect();
        let target_index = target_candidates
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, i as u32))
            .collect();
        MatchTask {
            source_candidates,
            target_candidates,
            gold,
            source_index,
            target_index,
        }
    }

    /// Number of source candidates.
    pub fn num_sources(&self) -> usize {
        self.source_candidates.len()
    }

    /// Number of target candidates.
    pub fn num_targets(&self) -> usize {
        self.target_candidates.len()
    }

    /// Extracts the candidate rows from full-graph embeddings.
    pub fn candidate_embeddings(&self, emb: &UnifiedEmbeddings) -> (Matrix, Matrix) {
        let src_rows: Vec<usize> = self.source_candidates.iter().map(|e| e.index()).collect();
        let tgt_rows: Vec<usize> = self.target_candidates.iter().map(|e| e.index()).collect();
        let source = emb
            .source
            .select_rows(&src_rows)
            .expect("candidate ids in range");
        let target = emb
            .target
            .select_rows(&tgt_rows)
            .expect("candidate ids in range");
        (source, target)
    }

    /// Builds the candidate-level adjacency context consumed by the RL
    /// matcher's coherence reward: candidate `i` lists the candidates
    /// adjacent to it in its own KG.
    pub fn context(&self, pair: &KgPair) -> MatchContext {
        MatchContext {
            source_adj: Some(candidate_adjacency(
                &pair.source,
                &self.source_candidates,
                &self.source_index,
            )),
            target_adj: Some(candidate_adjacency(
                &pair.target,
                &self.target_candidates,
                &self.target_index,
            )),
        }
    }

    /// Translates matcher output (candidate indices) into entity links.
    pub fn matching_to_links(&self, matching: &Matching) -> Vec<Link> {
        matching
            .pairs()
            .map(|(i, j)| Link::new(self.source_candidates[i], self.target_candidates[j]))
            .collect()
    }
}

fn candidate_adjacency(
    kg: &KnowledgeGraph,
    candidates: &[EntityId],
    index: &HashMap<EntityId, u32>,
) -> Vec<Vec<u32>> {
    candidates
        .iter()
        .map(|&e| {
            let mut out: Vec<u32> = kg
                .adjacency()
                .neighbors(e)
                .iter()
                .filter_map(|edge| index.get(&edge.neighbor).copied())
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use entmatcher_data::{generate_pair, PairSpec};

    fn pair() -> KgPair {
        generate_pair(&PairSpec {
            classes: 100,
            fillers_per_kg: 10,
            unmatchable_per_kg: 5,
            latent_edges: 600,
            relations: 10,
            ..Default::default()
        })
    }

    #[test]
    fn candidates_cover_test_links_and_unmatchables() {
        let p = pair();
        let task = MatchTask::from_pair(&p);
        assert_eq!(task.num_sources(), p.test_links().len() + 5);
        assert_eq!(task.num_targets(), p.test_links().len() + 5);
        // Train entities are not candidates.
        for l in p.train_links().iter() {
            assert!(!task.source_candidates.contains(&l.source));
        }
    }

    #[test]
    fn candidate_embeddings_select_the_right_rows() {
        let p = pair();
        let task = MatchTask::from_pair(&p);
        let emb = UnifiedEmbeddings {
            source: Matrix::from_fn(p.source.num_entities(), 2, |r, _| r as f32),
            target: Matrix::from_fn(p.target.num_entities(), 2, |r, _| -(r as f32)),
        };
        let (s, t) = task.candidate_embeddings(&emb);
        assert_eq!(s.rows(), task.num_sources());
        for (i, &e) in task.source_candidates.iter().enumerate() {
            assert_eq!(s.get(i, 0), e.index() as f32);
        }
        assert_eq!(t.get(0, 0), -(task.target_candidates[0].index() as f32));
    }

    #[test]
    fn matching_translates_to_links() {
        let p = pair();
        let task = MatchTask::from_pair(&p);
        // Identity-ish matching on candidate indices.
        let assignment: Vec<Option<u32>> = (0..task.num_sources() as u32).map(Some).collect();
        let links = task.matching_to_links(&Matching::new(assignment));
        assert_eq!(links.len(), task.num_sources());
        assert_eq!(links[0].source, task.source_candidates[0]);
        assert_eq!(links[0].target, task.target_candidates[0]);
    }

    #[test]
    fn context_adjacency_is_within_candidate_space() {
        let p = pair();
        let task = MatchTask::from_pair(&p);
        let ctx = task.context(&p);
        let adj = ctx.source_adj.unwrap();
        assert_eq!(adj.len(), task.num_sources());
        let n = task.num_sources() as u32;
        for neighbors in &adj {
            for &x in neighbors {
                assert!(x < n, "adjacency index {x} escapes candidate space");
            }
        }
    }
}
