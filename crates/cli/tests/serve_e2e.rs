//! End-to-end test of `entmatcher serve` against the real binary: spawn
//! the server, fire overlapping top-k requests from several client
//! threads, and check the observability contract — coalesced batches,
//! per-request span trees keyed by the returned `req_id`, cache hits
//! skipping the probe, and the `/metrics` serving families.

use entmatcher_support::json::Json;
use entmatcher_support::telemetry::Trace;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_entmatcher");

/// Generates a tiny dataset and name embeddings in-process and returns
/// (root, embeddings dir).
fn setup(tag: &str) -> (PathBuf, PathBuf) {
    let root = std::env::temp_dir().join(format!("entmatcher-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let data = root.join("data");
    let emb = root.join("emb");
    let run = |parts: &[&str]| {
        let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        entmatcher_cli::run(&argv).unwrap()
    };
    run(&[
        "generate",
        "--preset",
        "S-W",
        "--scale",
        "0.02",
        "--out",
        data.to_str().unwrap(),
    ]);
    run(&[
        "encode",
        "--data",
        data.to_str().unwrap(),
        "--encoder",
        "name",
        "--out",
        emb.to_str().unwrap(),
    ]);
    (root, emb)
}

/// One HTTP request against the server; returns the raw response text.
fn http(addr: &str, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to serve listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

/// Parses the body of a 200 JSON response.
fn json_body(response: &str) -> Json {
    assert!(
        response.starts_with("HTTP/1.1 200 OK"),
        "expected 200: {response}"
    );
    let body = response
        .split_once("\r\n\r\n")
        .expect("header/body split")
        .1;
    Json::parse(body).expect("response body is JSON")
}

/// Spawns `entmatcher serve` and waits for its announce line.
fn spawn_serve(emb: &std::path::Path, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(BIN)
        .args(["serve", "--embeddings", emb.to_str().unwrap()])
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn entmatcher serve");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut addr = None;
    let mut line = String::new();
    while stderr.read_line(&mut line).unwrap() > 0 {
        if let Some(rest) = line.trim().strip_prefix("serve: listening http://") {
            addr = Some(rest.split_whitespace().next().unwrap().to_string());
            break;
        }
        line.clear();
    }
    (child, addr.expect("serve announce line on stderr"))
}

#[test]
fn serve_coalesces_traces_and_caches() {
    let (root, emb) = setup("e2e");
    let trace_path = root.join("trace.json");
    // A long batch linger so the overlapping client threads land in one
    // fused pass instead of racing the worker one by one.
    let (mut child, addr) = spawn_serve(
        &emb,
        &[
            "--trace",
            trace_path.to_str().unwrap(),
            "--batch-wait-us",
            "100000",
            "--batch-max",
            "16",
        ],
    );

    // Overlapping requests: distinct ids, so every one is a cache miss
    // that must go through the batch worker.
    let n_clients = 6;
    let outcomes: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_clients)
            .map(|i| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let body = format!("{{\"ids\": [{i}], \"k\": 3}}");
                    let doc = json_body(&http(&addr, "POST", "/match/topk", &body));
                    let req_id = doc["req_id"].as_f64().unwrap() as u64;
                    let batch = doc["batch_size"].as_f64().unwrap() as u64;
                    assert_eq!(doc["cached"][0].as_bool(), Some(false));
                    let top = doc["results"][0].as_array().unwrap();
                    assert_eq!(top.len(), 3, "k=3 results");
                    (req_id, batch)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let max_batch = outcomes.iter().map(|&(_, b)| b).max().unwrap();
    assert!(
        max_batch > 1,
        "overlapping requests must coalesce: batch sizes {:?}",
        outcomes.iter().map(|&(_, b)| b).collect::<Vec<_>>()
    );

    // A repeat of the first query must be served from the cache.
    let doc = json_body(&http(&addr, "POST", "/match/topk", "{\"ids\": [0], \"k\": 3}"));
    assert_eq!(doc["cached"][0].as_bool(), Some(true), "repeat query cached");
    assert_eq!(doc["batch_size"].as_f64(), Some(0.0));
    let cached_req = doc["req_id"].as_f64().unwrap() as u64;

    // Malformed bodies are a 400, not a dead connection.
    let bad = http(&addr, "POST", "/match/topk", "{\"k\": 3}");
    assert!(bad.starts_with("HTTP/1.1 400"), "bad body: {bad}");

    // /metrics carries the serving families: the per-endpoint latency
    // histogram and the serve.* counters/gauges (poll: the publisher
    // re-renders every 250 ms).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut metrics;
    loop {
        metrics = http(&addr, "GET", "/metrics", "");
        if metrics.contains("entmatcher_request_seconds_count")
            || std::time::Instant::now() > deadline
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(
        metrics.contains("entmatcher_request_seconds_count{endpoint=\"/match/topk\"}"),
        "missing endpoint histogram: {metrics}"
    );
    assert!(metrics.contains("entmatcher_serve_requests_total"));
    assert!(metrics.contains("entmatcher_serve_batches_total"));
    assert!(
        metrics.contains("# TYPE entmatcher_serve_cache_hit_ratio gauge"),
        "cache hit ratio gauge missing: {metrics}"
    );
    let health = http(&addr, "GET", "/healthz", "");
    assert!(health.starts_with("HTTP/1.1 200 OK") && health.ends_with("ok\n"));

    // Shut down; run_command then writes the trace export.
    let down = http(&addr, "POST", "/shutdown", "");
    assert!(down.starts_with("HTTP/1.1 200 OK"), "shutdown: {down}");
    let status = child.wait().expect("serve exits after /shutdown");
    assert!(status.success(), "serve run failed");

    // Every response's req_id appears as a serve.request span tree in the
    // exported trace; the cached request has no probe span.
    let text = std::fs::read_to_string(&trace_path).expect("trace written");
    let trace: Trace = entmatcher_support::json::from_str(&text).expect("trace parses");
    for &(req_id, _) in &outcomes {
        let spans = trace.spans_for_request(req_id);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        for need in ["serve.request", "serve.queue", "serve.batch", "serve.probe"] {
            assert!(names.contains(&need), "req {req_id} missing {need}: {names:?}");
        }
        let root_span = spans
            .iter()
            .find(|s| s.name == "serve.request")
            .expect("root span");
        assert!(
            spans
                .iter()
                .filter(|s| matches!(s.name.as_str(), "serve.queue" | "serve.batch"))
                .all(|s| s.parent == Some(root_span.id)),
            "stage spans must hang off the request root"
        );
    }
    let cached_names: Vec<&str> = trace
        .spans_for_request(cached_req)
        .iter()
        .map(|s| s.name.as_str())
        .collect();
    assert!(cached_names.contains(&"serve.request"));
    assert!(
        !cached_names.contains(&"serve.probe"),
        "cache hit must skip the probe: {cached_names:?}"
    );
    std::fs::remove_dir_all(&root).unwrap();
}

/// Keep-alive against the real binary: several requests on one socket,
/// plus admission control — `--max-inflight 1` under overlapping clients
/// must produce at least one 429 with a Retry-After hint while the
/// admitted requests still succeed.
#[test]
fn serve_keepalive_and_admission_control() {
    let (root, emb) = setup("keepalive");
    let (mut child, addr) = spawn_serve(
        &emb,
        &["--max-inflight", "1", "--batch-wait-us", "300000", "--cache", "0"],
    );

    // One socket, three request/response exchanges — no Connection: close
    // until the last.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for round in 0..3 {
        let body = format!("{{\"ids\": [{round}], \"k\": 2}}");
        write!(
            stream,
            "POST /match/topk HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        // Read one framed response off the persistent socket.
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        let head_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = stream.read(&mut chunk).expect("read head");
            assert!(n > 0, "server closed a keep-alive socket early");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        assert!(head.starts_with("HTTP/1.1 200"), "round {round}: {head}");
        assert!(head.contains("Connection: keep-alive"), "round {round}: {head}");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        while buf.len() < head_end + len {
            let n = stream.read(&mut chunk).expect("read body");
            assert!(n > 0);
            buf.extend_from_slice(&chunk[..n]);
        }
        let doc = Json::parse(&String::from_utf8_lossy(&buf[head_end..head_end + len]))
            .expect("json body");
        assert_eq!(doc["cached"][0].as_bool(), Some(false));
    }
    drop(stream);

    // Saturate: 6 overlapping clients against max_inflight 1 and a long
    // batch linger. At least one is admitted and at least one is 429'd.
    let n_clients = 6;
    let statuses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_clients)
            .map(|i| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let body = format!("{{\"ids\": [{i}], \"k\": 2}}");
                    let resp = http(&addr, "POST", "/match/topk", &body);
                    resp.lines().next().unwrap_or("").to_owned()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(
        statuses.iter().any(|s| s.contains("200 OK")),
        "some request must be admitted: {statuses:?}"
    );
    assert!(
        statuses.iter().any(|s| s.contains("429")),
        "overload must fast-fail some request: {statuses:?}"
    );
    let rejected = http(&addr, "POST", "/match/topk", "{\"ids\": [0], \"k\": 2}");
    // The saturation window is over, so this one is admitted — and the
    // rejections are visible on /metrics.
    assert!(rejected.starts_with("HTTP/1.1 200"), "{rejected}");
    let metrics = http(&addr, "GET", "/metrics", "");
    assert!(
        metrics.contains("entmatcher_serve_rejected_total"),
        "rejected counter missing: {metrics}"
    );
    assert!(metrics.contains("entmatcher_http_open_connections"));
    assert!(metrics.contains("entmatcher_http_requests_per_conn_count"));

    let down = http(&addr, "POST", "/shutdown", "");
    assert!(down.starts_with("HTTP/1.1 200 OK"), "{down}");
    assert!(child.wait().unwrap().success());
    std::fs::remove_dir_all(&root).unwrap();
}

/// Quantized + IVF serving end to end: the self-match still ranks first
/// and the server answers id- and row-queries consistently.
#[test]
fn serve_ivf_int8_answers_queries() {
    let (root, emb) = setup("ivf");
    let (mut child, addr) = spawn_serve(
        &emb,
        &["--precision", "int8", "--candidates", "ivf", "--nprobe", "4"],
    );
    // Source and target are distinct id spaces; what the name encoder
    // guarantees is that source 7's aligned counterpart shares its name,
    // so the rank-1 cosine must stay near 1 even through int8 + IVF, and
    // the list must come back sorted.
    let doc = json_body(&http(&addr, "POST", "/match/topk", "{\"ids\": [7], \"k\": 5}"));
    let top = doc["results"][0].as_array().unwrap();
    assert_eq!(top.len(), 5);
    let scores: Vec<f64> = top.iter().map(|hit| hit["score"].as_f64().unwrap()).collect();
    assert!(
        scores[0] > 0.95,
        "rank-1 cosine must stay near 1 under ivf+int8: {scores:?}"
    );
    assert!(
        scores.windows(2).all(|w| w[0] >= w[1]),
        "results must be sorted best-first: {scores:?}"
    );
    let down = http(&addr, "POST", "/shutdown", "");
    assert!(down.starts_with("HTTP/1.1 200 OK"));
    assert!(child.wait().unwrap().success());
    std::fs::remove_dir_all(&root).unwrap();
}
