//! Error type for the matching library.

use std::fmt;

/// Errors surfaced by pipeline construction and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Source/target embeddings do not share a dimensionality.
    DimMismatch {
        /// Source embedding width.
        source: usize,
        /// Target embedding width.
        target: usize,
    },
    /// A hyper-parameter was out of its valid range.
    BadParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// The serving layer's inflight admission limit was hit; the caller
    /// should retry after the hinted backoff (maps to HTTP 429).
    Overloaded {
        /// Suggested client backoff in seconds (`Retry-After`).
        retry_after_s: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DimMismatch { source, target } => {
                write!(
                    f,
                    "embedding dimensionality mismatch: source {source}, target {target}"
                )
            }
            CoreError::BadParameter { name, constraint } => {
                write!(f, "invalid parameter {name}: {constraint}")
            }
            CoreError::Overloaded { retry_after_s } => {
                write!(f, "server overloaded; retry after {retry_after_s}s")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::DimMismatch {
            source: 64,
            target: 128,
        };
        assert!(e.to_string().contains("64"));
        let b = CoreError::BadParameter {
            name: "k",
            constraint: "must be >= 1",
        };
        assert!(b.to_string().contains("k"));
    }
}
