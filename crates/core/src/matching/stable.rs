//! Stable matching via Gale–Shapley deferred acceptance (paper §3.6,
//! "SMat").
//!
//! Sources propose in decreasing score order; each target holds its best
//! proposal so far (judged by the same score matrix, i.e. both sides rank
//! by `S`). The result is the source-optimal stable matching: no source/
//! target pair would both rather be with each other than with their
//! assigned partners.

use super::{MatchContext, Matcher, Matching};
use entmatcher_linalg::parallel::{par_map_rows_grained, Grain};
use entmatcher_linalg::rank::argsort_desc;
use entmatcher_linalg::Matrix;
use std::collections::VecDeque;

/// Gale–Shapley stable matcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct StableMarriage;

impl Matcher for StableMarriage {
    fn name(&self) -> &'static str {
        "Gale-Shapley"
    }

    fn run(&self, scores: &Matrix, _ctx: &MatchContext) -> Matching {
        let (n_s, n_t) = scores.shape();
        if n_s == 0 || n_t == 0 {
            return Matching::new(vec![None; n_s]);
        }
        // Full preference lists per source — this is the memory hog that
        // makes SMat the least space-efficient algorithm in the paper's
        // Figure 5 / Table 6.
        let prefs: Vec<Vec<usize>> =
            par_map_rows_grained(n_s, Grain::for_item_cost(n_t), |i| {
                argsort_desc(scores.row(i))
            });
        let mut next_choice = vec![0usize; n_s];
        let mut engaged_to: Vec<Option<u32>> = vec![None; n_t]; // target -> source
        let mut queue: VecDeque<usize> = (0..n_s).collect();
        while let Some(u) = queue.pop_front() {
            // u proposes down its list until accepted or exhausted.
            while next_choice[u] < n_t {
                let v = prefs[u][next_choice[u]];
                next_choice[u] += 1;
                match engaged_to[v] {
                    None => {
                        engaged_to[v] = Some(u as u32);
                        break;
                    }
                    Some(current) => {
                        // Target v keeps the better-scoring proposer.
                        if scores.get(u, v) > scores.get(current as usize, v) {
                            engaged_to[v] = Some(u as u32);
                            queue.push_back(current as usize);
                            break;
                        }
                    }
                }
            }
        }
        let mut assignment = vec![None; n_s];
        for (v, holder) in engaged_to.iter().enumerate() {
            if let Some(u) = holder {
                assignment[*u as usize] = Some(v as u32);
            }
        }
        Matching::new(assignment)
    }

    fn aux_bytes(&self, n_s: usize, n_t: usize) -> usize {
        // Full preference lists (n_s * n_t usize) dominate.
        n_s * n_t * std::mem::size_of::<usize>() + (n_s + n_t) * 16
    }
}

/// Checks stability of a matching under the score matrix: returns the
/// first blocking pair `(u, v)` if any. Exposed for tests and property
/// checks.
pub fn find_blocking_pair(scores: &Matrix, matching: &Matching) -> Option<(usize, usize)> {
    let (n_s, n_t) = scores.shape();
    let mut partner_of_target: Vec<Option<usize>> = vec![None; n_t];
    for (u, v) in matching.pairs() {
        partner_of_target[v] = Some(u);
    }
    for u in 0..n_s {
        let current = matching.assignment()[u];
        for (v, holder) in partner_of_target.iter().enumerate().take(n_t) {
            if current == Some(v as u32) {
                continue;
            }
            // Would u prefer v over u's current partner?
            let u_prefers = match current {
                Some(cv) => scores.get(u, v) > scores.get(u, cv as usize),
                None => true,
            };
            if !u_prefers {
                continue;
            }
            // Would v prefer u over v's current partner?
            let v_prefers = match holder {
                Some(cu) => scores.get(u, v) > scores.get(*cu, v),
                None => true,
            };
            if v_prefers {
                return Some((u, v));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_stable_and_injective() {
        let s = Matrix::from_fn(8, 8, |r, c| (((r * 13 + c * 7) % 11) as f32) / 11.0);
        let m = StableMarriage.run(&s, &MatchContext::default());
        assert!(m.is_injective());
        assert_eq!(m.matched_count(), 8);
        assert_eq!(find_blocking_pair(&s, &m), None);
    }

    #[test]
    fn resolves_contested_target_stably() {
        // Both sources love target 0; target 0 prefers source 0.
        let s = Matrix::from_vec(2, 2, vec![0.95, 0.50, 0.90, 0.88]).unwrap();
        let m = StableMarriage.run(&s, &MatchContext::default());
        assert_eq!(m.assignment(), &[Some(0), Some(1)]);
        assert_eq!(find_blocking_pair(&s, &m), None);
    }

    #[test]
    fn rectangular_more_sources_leaves_some_unmatched() {
        let s = Matrix::from_vec(3, 2, vec![0.9, 0.1, 0.8, 0.7, 0.85, 0.2]).unwrap();
        let m = StableMarriage.run(&s, &MatchContext::default());
        assert_eq!(m.matched_count(), 2);
        assert!(m.is_injective());
        assert_eq!(find_blocking_pair(&s, &m), None);
    }

    #[test]
    fn rectangular_more_targets() {
        let s = Matrix::from_vec(2, 4, vec![0.1, 0.2, 0.9, 0.3, 0.6, 0.5, 0.8, 0.1]).unwrap();
        let m = StableMarriage.run(&s, &MatchContext::default());
        assert_eq!(m.matched_count(), 2);
        assert_eq!(find_blocking_pair(&s, &m), None);
    }

    #[test]
    fn empty_instances() {
        let m = StableMarriage.run(&Matrix::zeros(3, 0), &MatchContext::default());
        assert_eq!(m.assignment(), &[None, None, None]);
        assert!(StableMarriage
            .run(&Matrix::zeros(0, 3), &MatchContext::default())
            .is_empty());
    }

    #[test]
    fn blocking_pair_detector_flags_unstable_matching() {
        let s = Matrix::from_vec(2, 2, vec![0.9, 0.1, 0.2, 0.8]).unwrap();
        // Swap the obvious assignment: (0->1, 1->0) is unstable.
        let bad = Matching::new(vec![Some(1), Some(0)]);
        assert!(find_blocking_pair(&s, &bad).is_some());
    }
}
