//! Model-vs-measured memory cross-check: every pipeline stage's modeled
//! `aux_bytes` estimate is validated against the counting allocator's
//! *measured* peak live heap (`entmatcher_support::alloc`).
//!
//! The envelopes are deliberately loose (small-n runs carry allocator
//! headers, `Vec` growth slack, and per-call bookkeeping the models
//! ignore) but directional claims are pinned hard: in-place stages must
//! measure far below the matrix they operate on, streaming stages must
//! measure linear in `n` rather than quadratic, and the full-RInf
//! transposed copies must actually show up on the heap.
//!
//! Every measurement forces `ENTMATCHER_THREADS=1` (set before the global
//! pool is first touched, so it is built at width 1 and the serial fast
//! path keeps all stage allocations on the measuring thread) and
//! serializes on one lock — the counting switch is process-global.

use entmatcher_core::matching::greedy::Greedy;
use entmatcher_core::matching::MatchContext;
use entmatcher_core::pipeline::MatchPipeline;
use entmatcher_core::score::csls::Csls;
use entmatcher_core::score::rinf::RInf;
use entmatcher_core::score::sinkhorn::Sinkhorn;
use entmatcher_core::score::ScoreOptimizer;
use entmatcher_core::similarity::SimilarityMetric;
use entmatcher_core::streaming::{streaming_aux_bytes, streaming_csls};
use entmatcher_core::IvfIndex;
use entmatcher_core::IvfParams;
use entmatcher_linalg::{matmul_blocked, Matrix, PackedAny, Precision};
use entmatcher_support::alloc::{self, CountingAlloc};
use entmatcher_support::rng::{Rng, SeedableRng, StdRng};
use std::hint::black_box;
use std::sync::Mutex;

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Loose additive slack every envelope carries: allocator headers, `Vec`
/// doubling, telemetry bookkeeping.
const SLACK: u64 = 256 << 10;

fn locked() -> std::sync::MutexGuard<'static, ()> {
    // Before any stage can touch the global pool: width 1 keeps every
    // stage allocation on this thread, where the measuring scope is open.
    std::env::set_var("ENTMATCHER_THREADS", "1");
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Measured peak live heap of `f`, in bytes.
fn measured<T>(name: &str, f: impl FnOnce() -> T) -> u64 {
    alloc::set_enabled(true);
    let (out, peak) = alloc::measure_peak(name, f);
    alloc::set_enabled(false);
    black_box(out);
    peak
}

fn random_embeddings(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, d, |_, _| rng.gen::<f32>() - 0.5)
}

/// Blocked GEMM: measured peak covers the result matrix plus packing
/// buffers, and nothing quadratically worse.
#[test]
fn gemm_measured_peak_within_envelope() {
    let _lock = locked();
    let a = random_embeddings(256, 64, 1);
    let b = random_embeddings(320, 64, 2);
    let out_bytes = (a.rows() * b.rows() * 4) as u64;
    let peak = measured("mem.gemm", || matmul_blocked(&a, &b).unwrap());
    assert!(
        peak >= out_bytes,
        "the result matrix alone is {out_bytes} B; measured only {peak}"
    );
    // Result + packed strips of both operands, generously doubled.
    let model = out_bytes + 2 * ((a.rows() + b.rows()) * a.cols() * 4) as u64;
    assert!(
        peak <= 2 * model + SLACK,
        "measured {peak} B blows the modeled GEMM envelope {model} B"
    );
}

/// Sinkhorn runs in place: its measured auxiliary peak is the column-sum
/// vectors, orders of magnitude below the matrix it normalizes.
#[test]
fn sinkhorn_measured_aux_is_in_place() {
    let _lock = locked();
    let n = 400usize;
    let scores = random_embeddings(n, n, 3);
    let matrix_bytes = (n * n * 4) as u64;
    let opt = Sinkhorn::default();
    let model = opt.aux_bytes(n, n) as u64;
    // The score matrix is allocated *before* the scope opens, so the scope
    // sees only the stage's true auxiliary allocations.
    let peak = measured("mem.sinkhorn", || opt.apply(scores));
    assert!(peak > 0, "the column-sum vector must be visible");
    assert!(
        peak <= 8 * model + 128 << 10,
        "Sinkhorn modeled {model} B aux; measured {peak} B"
    );
    assert!(
        peak < matrix_bytes / 4,
        "in-place Sinkhorn measured {peak} B against a {matrix_bytes} B matrix"
    );
}

/// Full RInf materializes transposed/rank copies (~4 extra cells); the
/// without-ranking variant allocates only the output cell plus O(n) max
/// vectors. The counting allocator must see exactly that asymmetry.
#[test]
fn rinf_variants_measured_against_their_models() {
    let _lock = locked();
    let n = 300usize;
    let cell = (n * n * 4) as u64;
    let run = |opt: RInf, tag: &str| {
        let scores = random_embeddings(n, n, 4);
        measured(tag, || opt.apply(scores))
    };
    let full = run(RInf::default(), "mem.rinf");
    let wr = run(RInf::without_ranking(), "mem.rinf_wr");
    // wr: one output cell + O(n) vectors (model says (n_s+n_t)*4 aux).
    let wr_model = cell + RInf::without_ranking().aux_bytes(n, n) as u64;
    assert!(wr >= cell, "RInf-wr must allocate its output: {wr} B");
    assert!(
        wr <= 2 * wr_model + SLACK,
        "RInf-wr modeled {wr_model} B; measured {wr} B"
    );
    // Full RInf: output + >= 2 simultaneously-live extra cells on top.
    assert!(
        full >= 3 * cell,
        "full RInf's rank copies must be measurable: {full} B vs cell {cell} B"
    );
    assert!(
        wr * 2 < full,
        "RInf-wr ({wr} B) must measure well below full RInf ({full} B)"
    );
}

/// Streaming CSLS measured peak tracks `streaming_aux_bytes` and — the
/// scalability claim — grows linearly in `n`, not quadratically.
#[test]
fn streaming_csls_measured_linear_in_n() {
    let _lock = locked();
    let (d, k, block) = (32usize, 5usize, 128usize);
    let run = |n: usize, seed: u64| {
        let s = random_embeddings(n, d, seed);
        let t = random_embeddings(n, d, seed + 1);
        // Distance metric: the strip-at-a-time path whose footprint
        // streaming_aux_bytes models directly.
        measured("mem.csls_stream", || {
            streaming_csls(&s, &t, SimilarityMetric::Euclidean, k, block)
        })
    };
    let p1 = run(256, 5);
    let p2 = run(512, 7);
    let model = streaming_aux_bytes(512, 512, k, block, d) as u64;
    assert!(
        p2 >= (block * 512 * 4) as u64,
        "one similarity strip must be measurable: {p2} B"
    );
    assert!(
        p2 <= 3 * model + SLACK,
        "streaming CSLS modeled {model} B; measured {p2} B"
    );
    // Doubling n must not quadruple the peak: the strip, heaps, and
    // per-source state are all linear (a dense pass would scale 4x).
    assert!(
        p2 < 3 * p1,
        "peak must scale linearly: n=256 -> {p1} B, n=512 -> {p2} B"
    );
    let dense = (512u64 * 512 * 4) * 2; // corrected + raw matrices
    assert!(
        p2 < dense,
        "streaming CSLS ({p2} B) must undercut the dense footprint ({dense} B)"
    );
}

/// IVF train + probe: the index (packed posting lists + centroids) and
/// the k-means scratch dominate training; probing stays far below any
/// dense score matrix.
#[test]
fn ivf_train_and_probe_within_envelope() {
    let _lock = locked();
    let (n, d) = (2000usize, 32usize);
    let t = random_embeddings(n, d, 8);
    let params = IvfParams {
        nlist: 32,
        nprobe: 8,
        train_iters: 4,
        seed: 9,
        ..IvfParams::default()
    };
    alloc::set_enabled(true);
    let (index, build_peak) =
        alloc::measure_peak("mem.ivf_train", || IvfIndex::build(&t, &params));
    alloc::set_enabled(false);
    // Packed members (~n*d*4 twice: select_rows copy + packed strips),
    // k-means assignment scratch (n*nlist*4), ids and centroid copies.
    let build_model =
        (2 * n * d * 4 + n * params.nlist * 4 + n * 8 + params.nlist * d * 8) as u64;
    assert!(
        build_peak >= (n * d * 4) as u64,
        "packed posting lists must be measurable: {build_peak} B"
    );
    assert!(
        build_peak <= 4 * build_model + SLACK,
        "IVF build modeled {build_model} B; measured {build_peak} B"
    );

    let queries = random_embeddings(500, d, 10);
    let probe_peak = measured("mem.ivf_probe", || {
        black_box(index.search(&queries, 10, params.nprobe))
    });
    let dense = (queries.rows() * n * 4) as u64;
    assert!(probe_peak > 0);
    assert!(
        probe_peak < dense / 4,
        "probing ({probe_peak} B) must stay far below a dense score pass ({dense} B)"
    );
    assert!(
        probe_peak < build_peak,
        "probe ({probe_peak} B) must be cheaper than training ({build_peak} B)"
    );
}

/// Quantized packing: the measured peak of a one-shot pack is the packed
/// buffer plus bounded transients, and the int8 pack really does measure
/// ~4x below the f32 pack of the same operand.
#[test]
fn quantized_pack_measured_peak_shrinks_with_element_width() {
    let _lock = locked();
    let (n, d) = (4096usize, 64usize);
    let t = random_embeddings(n, d, 21);
    let run = |precision: Precision, tag: &str| {
        alloc::set_enabled(true);
        let (packed, peak) = alloc::measure_peak(tag, || PackedAny::pack(&t, precision));
        alloc::set_enabled(false);
        let bytes = packed.packed_bytes() as u64;
        black_box(packed);
        (bytes, peak)
    };
    let (f32_bytes, f32_peak) = run(Precision::F32, "mem.pack_f32");
    let (i8_bytes, i8_peak) = run(Precision::Int8, "mem.pack_int8");
    // Each pack's peak covers its own buffer and little more.
    assert!(f32_peak >= f32_bytes, "packed f32 buffer must be measurable");
    assert!(i8_peak >= i8_bytes, "packed int8 buffer must be measurable");
    assert!(
        i8_peak <= 2 * i8_bytes + SLACK,
        "int8 pack measured {i8_peak} B for a {i8_bytes} B buffer"
    );
    // The headline claim: int8 storage is >= 3.5x smaller, measured.
    assert!(
        i8_peak * 7 <= f32_peak * 2 + 7 * SLACK,
        "int8 pack peak {i8_peak} B not ~1/3.5 of f32 peak {f32_peak} B"
    );
}

/// Out-of-core streaming: packing a snapshot through
/// `pack_snapshot_stream` with a small chunk size must peak at the packed
/// buffer plus O(chunk) transients — NOT the full f32 matrix the one-shot
/// path materializes. This is the aux-memory-independent-of-snapshot-size
/// property of the streaming loader.
#[test]
fn snapshot_stream_pack_peaks_at_chunk_not_matrix() {
    use entmatcher_linalg::{pack_snapshot_stream, snapshot};

    let _lock = locked();
    let (n, d, chunk) = (8192usize, 64usize, 256usize);
    let t = random_embeddings(n, d, 22);
    let matrix_bytes = (n * d * 4) as u64;
    let dir = std::env::temp_dir().join(format!("entmatcher-memmodel-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.emb");
    std::fs::write(&path, snapshot::to_bytes(&t)).unwrap();
    drop(t);

    alloc::set_enabled(true);
    let (packed, peak) = alloc::measure_peak("mem.stream_pack_int8", || {
        pack_snapshot_stream(&path, Precision::Int8, chunk).unwrap()
    });
    alloc::set_enabled(false);
    let packed_bytes = packed.packed_bytes() as u64;
    black_box(packed);
    let _ = std::fs::remove_dir_all(&dir);

    assert!(peak >= packed_bytes, "packed operand must be measurable");
    // Envelope: final packed buffer + chunk transients (f32 chunk matrix,
    // read buffer) with slack. The full f32 matrix (~2 MiB here) must NOT
    // appear: the packed int8 buffer is ~1/4 of it, so peaking below
    // matrix_bytes/2 proves the streamed path never materialized it.
    let chunk_bytes = (chunk * d * 4) as u64;
    assert!(
        peak <= packed_bytes + 4 * chunk_bytes + SLACK,
        "stream pack measured {peak} B for packed {packed_bytes} B + chunk {chunk_bytes} B"
    );
    assert!(
        peak < matrix_bytes / 2,
        "stream pack peak {peak} B should undercut the {matrix_bytes} B f32 matrix"
    );
}

/// End-to-end: `ExecutionReport::measured_heap_peak_bytes` is populated
/// from the pipeline span, covers the score matrix, sits inside the
/// modeled `peak_aux_bytes` envelope, and agrees with the exported trace.
#[test]
fn pipeline_report_measures_heap_within_modeled_envelope() {
    use entmatcher_data::{clustered_embeddings, EmbeddingSpec};
    use entmatcher_support::telemetry;

    let _lock = locked();
    let pair = clustered_embeddings(&EmbeddingSpec {
        entities: 300,
        dim: 32,
        clusters: 12,
        spread: 0.25,
        noise: 0.05,
        seed: 11,
    });
    let p = MatchPipeline::new(
        SimilarityMetric::Cosine,
        Box::new(Csls::default()),
        Box::new(Greedy),
    );

    // Counting off: the measured field must stay zero.
    alloc::set_enabled(false);
    let cold = p.execute(&pair.source, &pair.target, &MatchContext::default());
    assert_eq!(cold.measured_heap_peak_bytes, 0);

    telemetry::reset();
    telemetry::set_enabled(true);
    alloc::set_enabled(true);
    let r = p.execute(&pair.source, &pair.target, &MatchContext::default());
    alloc::set_enabled(false);
    telemetry::set_enabled(false);
    let trace = telemetry::snapshot();
    telemetry::reset();

    let sim_bytes = (pair.source.rows() * pair.target.rows() * 4) as u64;
    let measured = r.measured_heap_peak_bytes;
    assert!(
        measured >= sim_bytes,
        "the score matrix ({sim_bytes} B) is allocated inside the pipeline \
         span; measured only {measured} B"
    );
    // Envelope: modeled peak + the normalized embedding copies the model
    // excludes, with generous multiplicative slack for transients.
    let copies = ((pair.source.rows() + pair.target.rows()) * pair.source.cols() * 4) as u64;
    let envelope = 4 * (r.peak_aux_bytes as u64 + copies) + (1 << 20);
    assert!(
        measured <= envelope,
        "measured {measured} B blows the modeled envelope {envelope} B \
         (peak_aux_bytes {})",
        r.peak_aux_bytes
    );

    // The trace tells the same story: the pipeline span's recorded peak is
    // at least what the report captured (the report reads the scope just
    // before the span closes), and the similarity stage saw the matrix.
    let pipeline_span = trace
        .spans_named("pipeline")
        .find(|sp| sp.duration_ns == r.elapsed.as_nanos() as u64)
        .expect("pipeline span recorded");
    assert!(pipeline_span.heap_live_peak >= measured);
    let sim_span = trace
        .spans_named("similarity")
        .find(|sp| sp.parent == Some(pipeline_span.id))
        .expect("similarity span under pipeline");
    assert!(
        sim_span.heap_allocated >= sim_bytes,
        "similarity span must be charged for the score matrix: {} B",
        sim_span.heap_allocated
    );
}
