//! Candidate blocking via random-hyperplane LSH — the second half of the
//! scalability story (paper future direction 4).
//!
//! [`crate::streaming`] removes the quadratic *memory*; blocking removes
//! the quadratic *time*: instead of scoring every source against every
//! target, each source is compared only with targets sharing an LSH bucket
//! in at least one of several hash tables. Random-hyperplane signatures
//! approximate cosine similarity, so near-neighbours collide with high
//! probability while the bulk of the candidate space is never touched —
//! the same role blocking/filtering plays in the ER literature the paper
//! cites (Papadakis et al.).

use crate::matching::Matching;
use entmatcher_linalg::{dot, Matrix};
use std::collections::BTreeMap;

/// Random-hyperplane LSH blocker.
#[derive(Debug, Clone)]
pub struct LshBlocker {
    /// Signature bits per table (bucket count is `2^bits`).
    pub bits: usize,
    /// Independent hash tables; a pair is a candidate if it collides in
    /// *any* table (more tables = higher recall, more candidates).
    pub tables: usize,
    /// Seed for the hyperplane directions.
    pub seed: u64,
}

impl Default for LshBlocker {
    fn default() -> Self {
        LshBlocker {
            bits: 10,
            tables: 4,
            seed: 41,
        }
    }
}

impl LshBlocker {
    /// Generates the hyperplane normals: `tables * bits` rows of dimension
    /// `dim`, deterministic in the seed.
    fn hyperplanes(&self, dim: usize) -> Matrix {
        // SplitMix-based gaussian-ish values (sum of three uniforms),
        // avoiding a rand dependency in this hot path.
        let mut state = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) as f32 - 0.5
        };
        Matrix::from_fn(self.tables * self.bits, dim, |_, _| {
            next() + next() + next()
        })
    }

    /// Computes the per-table bucket keys of every row of `m`.
    fn signatures(&self, m: &Matrix, planes: &Matrix) -> Vec<Vec<u64>> {
        (0..m.rows())
            .map(|i| {
                let row = m.row(i);
                (0..self.tables)
                    .map(|t| {
                        let mut key = 0u64;
                        for b in 0..self.bits {
                            let plane = planes.row(t * self.bits + b);
                            key = (key << 1) | u64::from(dot(row, plane) >= 0.0);
                        }
                        key
                    })
                    .collect()
            })
            .collect()
    }

    /// Builds per-source candidate lists: all targets sharing at least one
    /// bucket. Lists are deduplicated and sorted.
    pub fn block(&self, source: &Matrix, target: &Matrix) -> Vec<Vec<u32>> {
        assert!(self.bits >= 1 && self.bits <= 32, "bits must be in 1..=32");
        assert!(self.tables >= 1, "at least one table required");
        assert_eq!(source.cols(), target.cols(), "embedding dims must match");
        let planes = self.hyperplanes(source.cols().max(1));
        let src_sigs = self.signatures(source, &planes);
        let tgt_sigs = self.signatures(target, &planes);
        // Invert target signatures into per-table bucket maps. BTreeMap
        // (not HashMap) so any iteration over buckets — now or in future
        // callers — visits keys in sorted order: candidate generation must
        // be bit-reproducible run-to-run under a fixed seed, and HashMap's
        // per-process iteration order would silently break that the first
        // time someone iterates a table.
        let mut buckets: Vec<BTreeMap<u64, Vec<u32>>> = vec![BTreeMap::new(); self.tables];
        for (j, sigs) in tgt_sigs.iter().enumerate() {
            for (t, &key) in sigs.iter().enumerate() {
                buckets[t].entry(key).or_default().push(j as u32);
            }
        }
        src_sigs
            .iter()
            .map(|sigs| {
                let mut cands: Vec<u32> = sigs
                    .iter()
                    .enumerate()
                    .filter_map(|(t, key)| buckets[t].get(key))
                    .flatten()
                    .copied()
                    .collect();
                cands.sort_unstable();
                cands.dedup();
                cands
            })
            .collect()
    }

    /// Greedy matching restricted to LSH candidates: each source takes its
    /// best-scoring blocked target (`None` when its buckets are empty).
    /// Time is O(total candidates * d) instead of O(n_s * n_t * d).
    pub fn blocked_greedy(&self, source: &Matrix, target: &Matrix) -> Matching {
        let blocks = self.block(source, target);
        let assignment = blocks
            .iter()
            .enumerate()
            .map(|(i, cands)| {
                let row = source.row(i);
                let mut best: Option<(u32, f32)> = None;
                for &j in cands {
                    let s = dot(row, target.row(j as usize));
                    if best.map(|(_, bs)| s > bs).unwrap_or(true) {
                        best = Some((j, s));
                    }
                }
                best.map(|(j, _)| j)
            })
            .collect();
        Matching::new(assignment)
    }

    /// Mean candidate-list length divided by `n_t` — the comparison-count
    /// reduction the blocker achieves (1.0 = no pruning).
    pub fn candidate_ratio(blocks: &[Vec<u32>], n_t: usize) -> f64 {
        if blocks.is_empty() || n_t == 0 {
            return 0.0;
        }
        let total: usize = blocks.iter().map(Vec::len).sum();
        total as f64 / (blocks.len() * n_t) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entmatcher_linalg::normalize_rows_l2;
    use entmatcher_support::rng::{Rng, SeedableRng, StdRng};

    /// Clustered embeddings: both sides share class centroids plus small
    /// per-side noise, mimicking unified EA embeddings.
    fn clustered_pair(n: usize, dim: usize, noise: f32, seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let centroids = Matrix::from_fn(n, dim, |_, _| rng.gen::<f32>() - 0.5);
        let perturb = |m: &Matrix, salt: u64| {
            let mut rng = StdRng::seed_from_u64(seed ^ salt);
            let mut out = m.clone();
            out.map_inplace(|v| v); // keep shape; add noise below
            for r in 0..out.rows() {
                for v in out.row_mut(r) {
                    *v += (rng.gen::<f32>() - 0.5) * noise;
                }
            }
            normalize_rows_l2(&mut out);
            out
        };
        (perturb(&centroids, 1), perturb(&centroids, 2))
    }

    #[test]
    fn near_duplicates_collide_and_match() {
        let (s, t) = clustered_pair(300, 32, 0.05, 7);
        let blocker = LshBlocker::default();
        let m = blocker.blocked_greedy(&s, &t);
        let correct = m
            .assignment()
            .iter()
            .enumerate()
            .filter(|(i, pick)| **pick == Some(*i as u32))
            .count();
        assert!(
            correct > 250,
            "blocked greedy should recover most identity matches: {correct}/300"
        );
    }

    #[test]
    fn blocking_prunes_most_comparisons() {
        let (s, t) = clustered_pair(500, 32, 0.05, 9);
        let blocker = LshBlocker {
            bits: 12,
            tables: 3,
            seed: 1,
        };
        let blocks = blocker.block(&s, &t);
        let ratio = LshBlocker::candidate_ratio(&blocks, t.rows());
        assert!(ratio < 0.2, "expected <20% of comparisons, got {ratio:.3}");
        // ...while keeping the true match in the candidate set usually.
        let mut hit = 0;
        for (i, cands) in blocks.iter().enumerate() {
            if cands.binary_search(&(i as u32)).is_ok() {
                hit += 1;
            }
        }
        assert!(hit > 400, "true matches should survive blocking: {hit}/500");
    }

    #[test]
    fn more_tables_increase_candidates() {
        let (s, t) = clustered_pair(200, 16, 0.2, 3);
        let few = LshBlocker {
            bits: 10,
            tables: 1,
            seed: 5,
        }
        .block(&s, &t);
        let many = LshBlocker {
            bits: 10,
            tables: 6,
            seed: 5,
        }
        .block(&s, &t);
        let count = |b: &[Vec<u32>]| b.iter().map(Vec::len).sum::<usize>();
        assert!(count(&many) > count(&few));
    }

    #[test]
    fn deterministic_given_seed() {
        let (s, t) = clustered_pair(100, 16, 0.1, 11);
        let blocker = LshBlocker::default();
        assert_eq!(blocker.block(&s, &t), blocker.block(&s, &t));
    }

    #[test]
    fn blocking_is_reproducible_across_instances() {
        // Two independently constructed blockers with the same knobs must
        // produce identical candidate sets AND identical downstream
        // matchings — the whole candidate path is a pure function of
        // (embeddings, bits, tables, seed).
        let (s, t) = clustered_pair(150, 16, 0.1, 13);
        let run = || {
            let blocker = LshBlocker {
                bits: 9,
                tables: 3,
                seed: 77,
            };
            (blocker.block(&s, &t), blocker.blocked_greedy(&s, &t))
        };
        let (blocks_a, match_a) = run();
        let (blocks_b, match_b) = run();
        assert_eq!(blocks_a, blocks_b);
        assert_eq!(match_a.assignment(), match_b.assignment());
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        let blocker = LshBlocker::default();
        let empty = Matrix::zeros(0, 8);
        let one = Matrix::from_fn(1, 8, |_, c| c as f32 + 1.0);

        // n == 0 on either or both sides.
        assert!(blocker.block(&empty, &empty).is_empty());
        assert!(blocker.block(&empty, &one).is_empty());
        assert_eq!(blocker.block(&one, &empty), vec![Vec::<u32>::new()]);

        // n == 1: the single pair either collides or abstains, no panic.
        let blocks = blocker.block(&one, &one);
        assert_eq!(blocks.len(), 1);
        let m = blocker.blocked_greedy(&one, &empty);
        assert_eq!(m.assignment(), &[None]);
    }

    #[test]
    fn empty_buckets_abstain() {
        // One-bit signatures with opposite vectors: source in one bucket,
        // target in the other -> no candidates.
        let s = Matrix::from_vec(1, 2, vec![1.0, 1.0]).unwrap();
        let t = Matrix::from_vec(1, 2, vec![-1.0, -1.0]).unwrap();
        let blocker = LshBlocker {
            bits: 8,
            tables: 1,
            seed: 2,
        };
        let m = blocker.blocked_greedy(&s, &t);
        assert_eq!(m.assignment(), &[None]);
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn rejects_zero_bits() {
        let m = Matrix::zeros(1, 2);
        LshBlocker {
            bits: 0,
            tables: 1,
            seed: 0,
        }
        .block(&m, &m);
    }
}
