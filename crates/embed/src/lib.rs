#![warn(missing_docs)]

//! Representation-learning substrate for the EntMatcher reproduction.
//!
//! The paper's evaluation plugs several *representation learning* models in
//! front of the matching algorithms (Algorithm 1, line 1): GCN and RREA for
//! structure, plus entity-name embeddings and a fused variant (§4.3). The
//! original models are GPU-trained neural networks; this crate implements
//! pure-Rust **propagation encoders** that preserve the properties the
//! matching study depends on (see `DESIGN.md` §3, substitution 2):
//!
//! * Seed links are the only cross-KG supervision: seed pairs share anchor
//!   vectors, every other entity starts from independent random noise, and
//!   cross-KG similarity for test entities emerges *only* through
//!   neighbourhood propagation over each KG's own structure.
//! * [`GcnEncoder`] does plain symmetric mean aggregation (GCN-Align
//!   flavour); [`RreaEncoder`] adds relation-aware edge weighting and
//!   bootstrapped pseudo-seed expansion (RREA flavour) and is reliably
//!   stronger — reproducing the paper's R- vs G- gap in Table 4.
//! * [`NameEncoder`] hashes character n-grams of entity display names,
//!   yielding the strong auxiliary signal of Table 5; [`fuse`] combines
//!   name and structure spaces.
//! * [`mlp`] implements the deepmatcher-style pair classifier used in the
//!   paper's §4.3 negative result.

pub mod encoder;
pub mod fusion;
pub mod gcn;
pub mod init;
pub mod mlp;
pub mod names;
pub mod propagation;
pub mod rrea;
pub mod transe;

pub use encoder::{Encoder, UnifiedEmbeddings};
pub use fusion::fuse;
pub use gcn::GcnEncoder;
pub use names::NameEncoder;
pub use rrea::RreaEncoder;
pub use transe::TransEEncoder;

/// Serializes tests that toggle the process-global telemetry switch, so
/// concurrent tests in this binary can't disable each other's recording.
#[cfg(test)]
pub(crate) fn telemetry_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
