//! Selection and ranking primitives: argmax, top-k, argsort, dense ranks.
//!
//! These back the matching algorithms directly: Greedy needs per-row argmax,
//! CSLS needs per-row top-k means, RInf needs full per-row rankings, and
//! Gale–Shapley needs sorted preference lists.

/// Index of the maximum value in `row` (first occurrence wins). Returns
/// `None` for an empty row. NaN values never win.
pub fn argmax(row: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in row.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Returns the indices of the `k` largest values in `row`, in descending
/// value order. If `k >= row.len()` the full descending argsort is returned.
///
/// Uses `select_nth_unstable` for O(n + k lg k) rather than sorting the full
/// row — CSLS calls this for every entity with small k.
pub fn top_k_desc(row: &[f32], k: usize) -> Vec<usize> {
    let n = row.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    if k >= n {
        return argsort_desc(row);
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.select_nth_unstable_by(k - 1, |&a, &b| {
        row[b]
            .partial_cmp(&row[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx.sort_unstable_by(|&a, &b| {
        row[b]
            .partial_cmp(&row[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

/// Mean of the `k` largest values in `row` (0.0 for an empty row/k = 0).
///
/// Uses a bounded-heap accumulator ([`crate::fused::TopKAccumulator`])
/// instead of materializing a sorted index vector — O(n lg k) with no
/// allocation proportional to `n`. The mean sums the retained values in
/// canonical descending order, so every top-k implementation in the crate
/// (dense selection, column pass, fused streaming) reports bit-identical
/// means for the same value multiset.
pub fn top_k_mean(row: &[f32], k: usize) -> f32 {
    let mut acc = crate::fused::TopKAccumulator::new(k);
    for (i, &v) in row.iter().enumerate() {
        acc.push(i as u32, v);
    }
    acc.mean()
}

/// Per-column mean of the `k` largest values of `m` — the column-wise
/// counterpart of [`top_k_mean`], i.e. the CSLS target-side neighbourhood
/// statistic. Streams the matrix row by row into per-column bounded heaps,
/// parallelized over contiguous column blocks, so no `n_t x n_s`
/// transposed copy is ever allocated.
pub fn col_top_k_means(m: &crate::matrix::Matrix, k: usize) -> Vec<f32> {
    use crate::fused::TopKAccumulator;
    let (rows, cols) = m.shape();
    let mut out = vec![0.0f32; cols];
    if cols == 0 {
        return out;
    }
    // Each output column is a reduction over all `rows` values, so the
    // per-item cost is `rows`, not 1 — few columns over many rows must
    // still fan out.
    let grain = crate::parallel::Grain::for_item_cost(rows);
    crate::parallel::par_row_chunks_mut_grained(&mut out, 1, grain, |col0, chunk| {
        let width = chunk.len();
        let mut heaps: Vec<TopKAccumulator> =
            (0..width).map(|_| TopKAccumulator::new(k)).collect();
        for r in 0..rows {
            let seg = &m.row(r)[col0..col0 + width];
            for (h, &v) in heaps.iter_mut().zip(seg.iter()) {
                h.push(r as u32, v);
            }
        }
        for (slot, h) in chunk.iter_mut().zip(heaps.iter()) {
            *slot = h.mean();
        }
    });
    out
}

/// Per-column maxima of `m` (NaN-safe: NaN never wins; columns of an
/// empty-row matrix report `NEG_INFINITY`). Streams rows in parallel over
/// column blocks instead of transposing.
pub fn col_maxes(m: &crate::matrix::Matrix) -> Vec<f32> {
    let (rows, cols) = m.shape();
    let mut out = vec![f32::NEG_INFINITY; cols];
    if cols == 0 {
        return out;
    }
    let grain = crate::parallel::Grain::for_item_cost(rows);
    crate::parallel::par_row_chunks_mut_grained(&mut out, 1, grain, |col0, chunk| {
        for r in 0..rows {
            let seg = &m.row(r)[col0..col0 + chunk.len()];
            for (slot, &v) in chunk.iter_mut().zip(seg.iter()) {
                if v > *slot {
                    *slot = v;
                }
            }
        }
    });
    out
}

/// Full argsort of `row` in descending order. Ties keep index order
/// (stable), making results deterministic.
pub fn argsort_desc(row: &[f32]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..row.len()).collect();
    idx.sort_by(|&a, &b| {
        row[b]
            .partial_cmp(&row[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

/// Converts a score row into dense ranks: the largest value gets rank 0,
/// the second largest rank 1, etc. (Ties are broken by index, matching
/// `argsort_desc`.) This is the ranking step of the RInf algorithm.
pub fn rank_desc(row: &[f32]) -> Vec<u32> {
    let order = argsort_desc(row);
    let mut ranks = vec![0u32; row.len()];
    for (rank, &i) in order.iter().enumerate() {
        ranks[i] = rank as u32;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic_and_edge_cases() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f32::NAN, 1.0]), Some(1));
        assert_eq!(argmax(&[f32::NAN]), None);
        // First occurrence wins on ties.
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
    }

    #[test]
    fn top_k_desc_returns_sorted_prefix() {
        let row = [0.1, 0.9, 0.5, 0.7, 0.3];
        assert_eq!(top_k_desc(&row, 3), vec![1, 3, 2]);
        assert_eq!(top_k_desc(&row, 99), vec![1, 3, 2, 4, 0]);
        assert!(top_k_desc(&row, 0).is_empty());
        assert!(top_k_desc(&[], 3).is_empty());
    }

    #[test]
    fn top_k_mean_matches_hand_value() {
        let row = [0.1, 0.9, 0.5, 0.7, 0.3];
        let m = top_k_mean(&row, 2);
        assert!((m - 0.8).abs() < 1e-6);
        assert_eq!(top_k_mean(&[], 2), 0.0);
    }

    #[test]
    fn top_k_mean_equals_sort_based_reference() {
        // The heap-based mean must match the retired argsort-based
        // implementation: mean of the first k entries of the full argsort.
        let row = [0.3, -1.2, 0.9, 0.9, 0.0, 2.5, -0.4];
        for k in 1..=row.len() + 2 {
            let sorted = argsort_desc(&row);
            let take = k.min(row.len());
            let want: f32 =
                sorted[..take].iter().map(|&i| row[i]).sum::<f32>() / take as f32;
            assert!(
                (top_k_mean(&row, k) - want).abs() < 1e-6,
                "k={k}: {} vs {want}",
                top_k_mean(&row, k)
            );
        }
    }

    #[test]
    fn col_top_k_means_match_transposed_row_means() {
        let m = crate::matrix::Matrix::from_fn(7, 5, |r, c| {
            ((r * 13 + c * 7) % 11) as f32 * 0.3 - 1.0
        });
        let t = m.transposed();
        for k in [1usize, 3, 10] {
            let cols = col_top_k_means(&m, k);
            for (j, got) in cols.iter().enumerate() {
                let want = top_k_mean(t.row(j), k);
                assert!((got - want).abs() < 1e-6, "k={k} col {j}");
            }
        }
    }

    #[test]
    fn col_maxes_match_column_scan() {
        let m = crate::matrix::Matrix::from_fn(6, 4, |r, c| ((r * 5 + c * 3) % 13) as f32 - 6.0);
        let maxes = col_maxes(&m);
        for j in 0..4 {
            let want = m.col(j).iter().copied().fold(f32::NEG_INFINITY, f32::max);
            assert_eq!(maxes[j], want);
        }
        // NaN never wins; empty-row matrix reports NEG_INFINITY.
        let with_nan =
            crate::matrix::Matrix::from_vec(2, 1, vec![f32::NAN, 1.0]).unwrap();
        assert_eq!(col_maxes(&with_nan), vec![1.0]);
        let empty = crate::matrix::Matrix::zeros(0, 3);
        assert_eq!(col_maxes(&empty), vec![f32::NEG_INFINITY; 3]);
        assert!(col_maxes(&crate::matrix::Matrix::zeros(3, 0)).is_empty());
        assert!(col_top_k_means(&crate::matrix::Matrix::zeros(3, 0), 2).is_empty());
    }

    #[test]
    fn argsort_desc_is_stable_on_ties() {
        let row = [1.0, 2.0, 2.0, 0.0];
        assert_eq!(argsort_desc(&row), vec![1, 2, 0, 3]);
    }

    #[test]
    fn rank_desc_inverts_argsort() {
        let row = [0.2, 0.8, 0.5];
        let ranks = rank_desc(&row);
        assert_eq!(ranks, vec![2, 0, 1]);
    }

    #[test]
    fn rank_desc_is_a_permutation_of_0_to_n() {
        let row = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut ranks = rank_desc(&row);
        ranks.sort_unstable();
        let want: Vec<u32> = (0..row.len() as u32).collect();
        assert_eq!(ranks, want);
    }
}
