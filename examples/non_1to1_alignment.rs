//! Non-1-to-1 alignment (paper §5.2): real KGs contain duplicate entities
//! and entities of different granularity, so gold links form 1-to-many /
//! many-to-1 / many-to-many clusters. Hard 1-to-1 matchers lose recall by
//! construction; greedy score-optimizer methods degrade more gracefully.
//!
//! Run with: `cargo run --example non_1to1_alignment --release`

use entmatcher::prelude::*;

fn main() {
    // The FB_DBP_MUL analogue: ~90% of links are non-1-to-1.
    let spec = entmatcher::data::benchmarks::fb_dbp_mul(0.05);
    let pair = generate_pair(&spec);
    let (one, multi) = pair.gold.link_multiplicity();
    println!(
        "pair {}: {} gold links ({} are non-1-to-1, {} are 1-to-1)",
        pair.id,
        pair.gold.len(),
        multi,
        one
    );
    println!(
        "split integrity: links sharing an entity always land in one split \
         (train {}, valid {}, test {})",
        pair.train_links().len(),
        pair.valid_links().len(),
        pair.test_links().len()
    );

    let embeddings = RreaEncoder::default().encode(&pair);
    let task = MatchTask::from_pair(&pair);
    let (src, tgt) = task.candidate_embeddings(&embeddings);
    let ctx = task.context(&pair);

    println!("\n{:<6} {:>7} {:>7} {:>7}", "algo", "P", "R", "F1");
    for preset in [
        AlgorithmPreset::DInf,
        AlgorithmPreset::Csls,
        AlgorithmPreset::RInf,
        AlgorithmPreset::Hungarian,
        AlgorithmPreset::StableMarriage,
    ] {
        let report = preset.build().execute(&src, &tgt, &ctx);
        let links = task.matching_to_links(&report.matching);
        let s = evaluate_links(&links, &task.gold);
        println!(
            "{:<6} {:>7.3} {:>7.3} {:>7.3}",
            preset.name(),
            s.precision,
            s.recall,
            s.f1
        );
    }

    println!(
        "\nNote the recall ceiling: every method predicts at most one target per \
         source, but {} of {} test links share a source entity — the paper's \
         motivation for new non-1-to-1 matching algorithms.",
        task.gold.len() - task.gold.sources().len(),
        task.gold.len()
    );

    // The paper's future direction 5, implemented: multi-assignment
    // matchers break that ceiling.
    use entmatcher::core::{similarity_matrix, ThresholdMatcher};
    let scores = similarity_matrix(&src, &tgt, SimilarityMetric::Cosine);
    let scores = Csls::default().apply(scores);
    let multi = ThresholdMatcher::default().run_multi(&scores);
    let links: Vec<Link> = multi
        .pairs()
        .map(|(i, j)| Link::new(task.source_candidates[i], task.target_candidates[j]))
        .collect();
    let s = evaluate_links(&links, &task.gold);
    println!(
        "\nExtension Threshold(CSLS): P = {:.3}  R = {:.3}  F1 = {:.3}  \
         ({} predictions over {} sources)",
        s.precision,
        s.recall,
        s.f1,
        multi.total_predictions(),
        multi.covered_sources()
    );
}
