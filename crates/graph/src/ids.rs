//! Compact typed identifiers for entities and relations.
//!
//! Entity counts in the paper's benchmarks top out at 200k (DWY100K), so a
//! `u32` index is ample and halves the footprint of triple and edge arrays
//! relative to `usize`.

use entmatcher_support::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// Identifier of an entity within one knowledge graph's interner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u32);

/// Identifier of a relation (predicate) within one knowledge graph's interner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationId(pub u32);

// Ids serialize as bare numbers (newtype transparency), keeping link and
// triple dumps compact.
impl ToJson for EntityId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for EntityId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::from_json(v).map(EntityId)
    }
}

impl ToJson for RelationId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for RelationId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::from_json(v).map(RelationId)
    }
}

impl EntityId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RelationId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for EntityId {
    fn from(v: u32) -> Self {
        EntityId(v)
    }
}

impl From<u32> for RelationId {
    fn from(v: u32) -> Self {
        RelationId(v)
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_convert_and_display() {
        let e = EntityId::from(7u32);
        assert_eq!(e.index(), 7);
        assert_eq!(e.to_string(), "e7");
        let r = RelationId::from(3u32);
        assert_eq!(r.index(), 3);
        assert_eq!(r.to_string(), "r3");
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(EntityId(1) < EntityId(2));
        assert!(RelationId(0) < RelationId(10));
    }
}
