//! Case studies (paper Appendix D): concrete entities where one matching
//! algorithm corrects another's mistake, rendered with entity names and
//! scores — the "explainability" benefit the paper attributes to studying
//! the embedding matching stage (§1, significance point 3).

use crate::task::MatchTask;
use entmatcher_core::Matching;
use entmatcher_graph::KgPair;
use entmatcher_linalg::Matrix;
use entmatcher_support::impl_json_struct;
use std::collections::HashMap;

/// One decision flip between a baseline and an improved algorithm.
#[derive(Debug, Clone)]
pub struct CaseExample {
    /// Source entity symbol.
    pub source: String,
    /// Gold target symbol.
    pub gold_target: String,
    /// The baseline's (wrong) pick and its raw score.
    pub baseline_pick: String,
    /// Raw similarity of the baseline's pick.
    pub baseline_score: f32,
    /// The improved algorithm's (correct) pick.
    pub improved_pick: String,
    /// Raw similarity of the correct pick (typically *lower* than the
    /// baseline's — the whole point of global coordination).
    pub improved_score: f32,
}

impl_json_struct!(CaseExample {
    source,
    gold_target,
    baseline_pick,
    baseline_score,
    improved_pick,
    improved_score
});

/// Finds up to `limit` cases where `baseline` errs and `improved` recovers
/// the gold target, annotated with raw similarity scores.
pub fn find_corrections(
    pair: &KgPair,
    task: &MatchTask,
    raw_scores: &Matrix,
    baseline: &Matching,
    improved: &Matching,
    limit: usize,
) -> Vec<CaseExample> {
    let gold_by_source = task.gold.by_source();
    let mut target_pos: HashMap<u32, usize> = HashMap::new();
    for (j, t) in task.target_candidates.iter().enumerate() {
        target_pos.insert(t.0, j);
    }
    let name = |kg: &entmatcher_graph::KnowledgeGraph, e: entmatcher_graph::EntityId| {
        kg.entity_name(e).unwrap_or("<unknown>").to_owned()
    };
    let mut out = Vec::new();
    for (i, &source) in task.source_candidates.iter().enumerate() {
        if out.len() >= limit {
            break;
        }
        let Some(gold_targets) = gold_by_source.get(&source) else {
            continue;
        };
        let (Some(b), Some(g)) = (baseline.assignment()[i], improved.assignment()[i]) else {
            continue;
        };
        let b_entity = task.target_candidates[b as usize];
        let g_entity = task.target_candidates[g as usize];
        let baseline_wrong = !gold_targets.contains(&b_entity);
        let improved_right = gold_targets.contains(&g_entity);
        if baseline_wrong && improved_right {
            out.push(CaseExample {
                source: name(&pair.source, source),
                gold_target: name(&pair.target, g_entity),
                baseline_pick: name(&pair.target, b_entity),
                baseline_score: raw_scores.get(i, b as usize),
                improved_pick: name(&pair.target, g_entity),
                improved_score: raw_scores.get(i, g as usize),
            });
        }
    }
    out
}

/// Renders case examples as a readable block.
pub fn render_cases(cases: &[CaseExample]) -> String {
    let mut s = String::new();
    for (i, c) in cases.iter().enumerate() {
        s.push_str(&format!(
            "case {}: {}\n  baseline picked {} (sim {:.3}) — WRONG\n  \
             improved picked {} (sim {:.3}) — gold\n",
            i + 1,
            c.source,
            c.baseline_pick,
            c.baseline_score,
            c.improved_pick,
            c.improved_score
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use entmatcher_core::{similarity_matrix, SimilarityMetric};
    use entmatcher_core::{AlgorithmPreset, MatchContext};
    use entmatcher_data::{benchmarks, generate_pair};
    use entmatcher_embed::Encoder;

    #[test]
    fn finds_corrections_between_dinf_and_hungarian() {
        let pair = generate_pair(&benchmarks::dbp15k("D-Z", 0.05));
        let emb = entmatcher_embed::RreaEncoder::default().encode(&pair);
        let task = MatchTask::from_pair(&pair);
        let (src, tgt) = task.candidate_embeddings(&emb);
        let raw = similarity_matrix(&src, &tgt, SimilarityMetric::Cosine);
        let ctx = MatchContext::default();
        let dinf = AlgorithmPreset::DInf
            .build()
            .execute(&src, &tgt, &ctx)
            .matching;
        let hun = AlgorithmPreset::Hungarian
            .build()
            .execute(&src, &tgt, &ctx)
            .matching;
        let cases = find_corrections(&pair, &task, &raw, &dinf, &hun, 5);
        assert!(
            !cases.is_empty(),
            "Hungarian should correct at least one DInf error"
        );
        for c in &cases {
            assert_eq!(c.improved_pick, c.gold_target);
            assert_ne!(c.baseline_pick, c.gold_target);
        }
        let text = render_cases(&cases);
        assert!(text.contains("WRONG"));
        assert!(text.contains("gold"));
    }

    #[test]
    fn identical_matchings_yield_no_cases() {
        let pair = generate_pair(&benchmarks::dbp15k("D-Z", 0.02));
        let emb = entmatcher_embed::GcnEncoder::default().encode(&pair);
        let task = MatchTask::from_pair(&pair);
        let (src, tgt) = task.candidate_embeddings(&emb);
        let raw = similarity_matrix(&src, &tgt, SimilarityMetric::Cosine);
        let m = AlgorithmPreset::DInf
            .build()
            .execute(&src, &tgt, &MatchContext::default())
            .matching;
        let cases = find_corrections(&pair, &task, &raw, &m, &m, 10);
        assert!(cases.is_empty());
    }
}
