//! Compact binary snapshots of matrices.
//!
//! Embedding matrices are the hand-off artifact between the representation
//! learning stage and the matching stage (paper Figure 2). The snapshot
//! format lets the experiment harness cache trained embeddings on disk and
//! reload them without re-running the encoders.
//!
//! Layout (little-endian):
//! `magic "EMTX" | u32 version | u64 rows | u64 cols | rows*cols * f32`.
//!
//! Besides the in-memory [`to_bytes`]/[`from_bytes`] pair, the module
//! offers out-of-core access: [`SnapshotReader`] iterates a snapshot in
//! fixed-size row chunks through a buffered reader, and
//! [`read_file_chunked`] loads a file with aux memory bounded by the chunk
//! (no full byte-buffer copy next to the decoded matrix, which is what
//! `fs::read` + [`from_bytes`] costs).

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;
use entmatcher_support::telemetry;
use std::io::Read;

const MAGIC: &[u8; 4] = b"EMTX";
const VERSION: u32 = 1;

/// Size of the fixed snapshot header in bytes.
const HEADER_BYTES: usize = 24;

/// Serializes a matrix into the snapshot wire format.
pub fn to_bytes(m: &Matrix) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + 4 + 16 + m.len() * 4);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(m.rows() as u64).to_le_bytes());
    buf.extend_from_slice(&(m.cols() as u64).to_le_bytes());
    for &v in m.as_slice() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

/// A little-endian cursor over the snapshot wire format.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        if self.buf.len() < N {
            return None;
        }
        let (head, rest) = self.buf.split_at(N);
        self.buf = rest;
        Some(head.try_into().unwrap())
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }
}

/// Decodes a snapshot produced by [`to_bytes`].
pub fn from_bytes(bytes: &[u8]) -> Result<Matrix> {
    let mut r = Reader { buf: bytes };
    if r.remaining() < 24 {
        return Err(LinalgError::CorruptSnapshot("truncated header".into()));
    }
    let magic: [u8; 4] = r.take().unwrap();
    if &magic != MAGIC {
        return Err(LinalgError::CorruptSnapshot(format!("bad magic {magic:?}")));
    }
    let version = u32::from_le_bytes(r.take().unwrap());
    if version != VERSION {
        return Err(LinalgError::CorruptSnapshot(format!(
            "unsupported version {version}"
        )));
    }
    let rows = u64::from_le_bytes(r.take().unwrap()) as usize;
    let cols = u64::from_le_bytes(r.take().unwrap()) as usize;
    let expected = rows
        .checked_mul(cols)
        .ok_or_else(|| LinalgError::CorruptSnapshot("shape overflow".into()))?;
    if r.remaining() != expected * 4 {
        return Err(LinalgError::CorruptSnapshot(format!(
            "payload length {} != {} elements",
            r.remaining() / 4,
            expected
        )));
    }
    let mut data = Vec::with_capacity(expected);
    for _ in 0..expected {
        data.push(f32::from_le_bytes(r.take().unwrap()));
    }
    Matrix::from_vec(rows, cols, data)
}

/// Decodes a snapshot header from raw bytes (shared by [`from_bytes`] and
/// the streaming reader). Returns `(rows, cols)`.
fn parse_header(head: &[u8; HEADER_BYTES]) -> Result<(usize, usize)> {
    let magic: [u8; 4] = head[0..4].try_into().unwrap();
    if &magic != MAGIC {
        return Err(LinalgError::CorruptSnapshot(format!("bad magic {magic:?}")));
    }
    let version = u32::from_le_bytes(head[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(LinalgError::CorruptSnapshot(format!(
            "unsupported version {version}"
        )));
    }
    let rows = u64::from_le_bytes(head[8..16].try_into().unwrap()) as usize;
    let cols = u64::from_le_bytes(head[16..24].try_into().unwrap()) as usize;
    rows.checked_mul(cols)
        .ok_or_else(|| LinalgError::CorruptSnapshot("shape overflow".into()))?;
    Ok((rows, cols))
}

/// Streams a snapshot in fixed-size row chunks — the out-of-core load
/// path. The header is parsed eagerly so [`SnapshotReader::rows`] /
/// [`SnapshotReader::cols`] can size downstream buffers (e.g.
/// [`crate::quant::PackedBuilder::with_capacity`]) before any payload is
/// read; the payload is then consumed chunk by chunk through one reused
/// byte buffer, so aux memory is O(chunk), independent of snapshot size.
#[derive(Debug)]
pub struct SnapshotReader<R = std::io::BufReader<std::fs::File>> {
    inner: R,
    rows: usize,
    cols: usize,
    next_row: usize,
    /// Reused chunk byte buffer (grown to the largest chunk requested).
    buf: Vec<u8>,
}

impl SnapshotReader<std::io::BufReader<std::fs::File>> {
    /// Opens a snapshot file for chunked reading, validating the header
    /// and that the file length matches the declared shape.
    pub fn open(path: &std::path::Path) -> Result<Self> {
        let file = std::fs::File::open(path)
            .map_err(|e| LinalgError::Io(format!("{}: {e}", path.display())))?;
        let file_len = file
            .metadata()
            .map_err(|e| LinalgError::Io(format!("{}: {e}", path.display())))?
            .len();
        let reader = Self::from_reader(std::io::BufReader::new(file))?;
        let expected = HEADER_BYTES as u64 + (reader.rows * reader.cols * 4) as u64;
        if file_len != expected {
            return Err(LinalgError::CorruptSnapshot(format!(
                "file length {file_len} != {expected} for {} x {}",
                reader.rows, reader.cols
            )));
        }
        Ok(reader)
    }
}

impl<R: Read> SnapshotReader<R> {
    /// Wraps any byte stream positioned at a snapshot header.
    pub fn from_reader(mut inner: R) -> Result<Self> {
        let mut head = [0u8; HEADER_BYTES];
        inner
            .read_exact(&mut head)
            .map_err(|_| LinalgError::CorruptSnapshot("truncated header".into()))?;
        let (rows, cols) = parse_header(&head)?;
        Ok(SnapshotReader {
            inner,
            rows,
            cols,
            next_row: 0,
            buf: Vec::new(),
        })
    }

    /// Total rows declared by the header.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns declared by the header.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows not yet consumed.
    #[inline]
    pub fn rows_remaining(&self) -> usize {
        self.rows - self.next_row
    }

    /// Reads the next chunk of at most `max_rows` rows (`None` once the
    /// payload is exhausted). A truncated stream is a
    /// [`LinalgError::CorruptSnapshot`].
    pub fn next_chunk(&mut self, max_rows: usize) -> Result<Option<Matrix>> {
        let rows = max_rows.max(1).min(self.rows_remaining());
        if rows == 0 {
            return Ok(None);
        }
        let bytes = rows * self.cols * 4;
        self.buf.resize(bytes, 0);
        self.inner.read_exact(&mut self.buf).map_err(|_| {
            LinalgError::CorruptSnapshot(format!(
                "truncated payload at row {} of {}",
                self.next_row, self.rows
            ))
        })?;
        let mut data = Vec::with_capacity(rows * self.cols);
        for quad in self.buf.chunks_exact(4) {
            data.push(f32::from_le_bytes(quad.try_into().unwrap()));
        }
        self.next_row += rows;
        Ok(Some(Matrix::from_vec(rows, self.cols, data)?))
    }
}

/// Loads a snapshot file with aux memory bounded by `chunk_rows`: the
/// output matrix is allocated once from the header and filled through the
/// streaming reader, instead of holding the whole file's bytes next to the
/// decoded floats. Telemetry: `snapshot.stream.chunks`.
pub fn read_file_chunked(path: &std::path::Path, chunk_rows: usize) -> Result<Matrix> {
    let mut reader = SnapshotReader::open(path)?;
    let (rows, cols) = (reader.rows(), reader.cols());
    let mut out = Matrix::zeros(rows, cols);
    let mut row = 0usize;
    let mut chunks = 0u64;
    while let Some(chunk) = reader.next_chunk(chunk_rows)? {
        let dst = &mut out.as_mut_slice()[row * cols..(row + chunk.rows()) * cols];
        dst.copy_from_slice(chunk.as_slice());
        row += chunk.rows();
        chunks += 1;
    }
    telemetry::add("snapshot.stream.chunks", chunks);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_matrix() {
        let m = Matrix::from_fn(7, 5, |r, c| (r as f32 * 1.5) - (c as f32 * 0.25));
        let bytes = to_bytes(&m);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn roundtrip_empty_matrix() {
        let m = Matrix::zeros(0, 0);
        assert_eq!(from_bytes(&to_bytes(&m)).unwrap(), m);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = to_bytes(&Matrix::zeros(1, 1));
        raw[0] = b'X';
        assert!(from_bytes(&raw).is_err());
    }

    #[test]
    fn rejects_truncated_payload() {
        let raw = to_bytes(&Matrix::zeros(2, 2));
        assert!(from_bytes(&raw[..raw.len() - 4]).is_err());
    }

    #[test]
    fn rejects_truncated_header() {
        assert!(from_bytes(b"EMTX").is_err());
    }

    #[test]
    fn reader_streams_chunks_in_order() {
        let m = Matrix::from_fn(11, 3, |r, c| (r * 3 + c) as f32);
        let bytes = to_bytes(&m);
        let mut reader = SnapshotReader::from_reader(std::io::Cursor::new(bytes)).unwrap();
        assert_eq!((reader.rows(), reader.cols()), (11, 3));
        let mut row = 0usize;
        while let Some(chunk) = reader.next_chunk(4).unwrap() {
            assert_eq!(chunk.cols(), 3);
            for r in 0..chunk.rows() {
                assert_eq!(chunk.row(r), m.row(row + r));
            }
            row += chunk.rows();
        }
        assert_eq!(row, 11);
        assert_eq!(reader.rows_remaining(), 0);
        assert!(reader.next_chunk(4).unwrap().is_none());
    }

    #[test]
    fn reader_rejects_truncated_payload() {
        let bytes = to_bytes(&Matrix::zeros(4, 2));
        let cut = &bytes[..bytes.len() - 4];
        let mut reader = SnapshotReader::from_reader(std::io::Cursor::new(cut.to_vec())).unwrap();
        let mut last = Ok(None);
        for _ in 0..4 {
            last = reader.next_chunk(2);
            if last.is_err() {
                break;
            }
        }
        assert!(last.is_err());
    }

    #[test]
    fn chunked_file_load_matches_from_bytes() {
        let m = Matrix::from_fn(23, 5, |r, c| (r as f32) * 0.5 - (c as f32) * 0.125);
        let dir =
            std::env::temp_dir().join(format!("entmatcher-snapshot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chunked.emb");
        std::fs::write(&path, to_bytes(&m)).unwrap();
        for chunk in [1usize, 7, 23, 100] {
            assert_eq!(read_file_chunked(&path, chunk).unwrap(), m, "chunk={chunk}");
        }
        // Length validation: a padded file is rejected up front.
        let mut padded = to_bytes(&m);
        padded.push(0);
        std::fs::write(&path, padded).unwrap();
        assert!(SnapshotReader::open(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_missing_file_is_io_error() {
        let err = SnapshotReader::open(std::path::Path::new("/nonexistent/x.emb")).unwrap_err();
        assert!(matches!(err, LinalgError::Io(_)));
    }
}
