//! Argument parsing: a small `--flag value` parser with typed accessors.

use crate::commands::CliError;
use std::collections::HashMap;

/// A parsed command line: the subcommand plus its `--flag value` options.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedArgs {
    /// The subcommand (`generate`, `stats`, `encode`, `match`, `eval`).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl ParsedArgs {
    /// A required string option.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.options
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing required option --{name}")))
    }

    /// An optional string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// An optional float option with a default.
    pub fn get_f64(&self, name: &str, default: f64) -> Result<f64, CliError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} expects a number, got {v:?}"))),
        }
    }

    /// An optional integer option with a default.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, CliError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} expects an integer, got {v:?}"))),
        }
    }

    /// Whether a bare `--flag` (no value) was passed.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// Bare flags that take no value.
const BARE_FLAGS: &[&str] = &["dummies", "help"];

/// Parses an argv-style slice (without the program name).
pub fn parse_args(argv: &[String]) -> Result<ParsedArgs, CliError> {
    let mut it = argv.iter();
    let command = it
        .next()
        .ok_or_else(|| CliError::Usage("no command given".into()))?
        .clone();
    let mut options = HashMap::new();
    let mut flags = Vec::new();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(CliError::Usage(format!(
                "unexpected positional argument {arg:?}"
            )));
        };
        if BARE_FLAGS.contains(&name) {
            flags.push(name.to_owned());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| CliError::Usage(format!("option --{name} requires a value")))?;
        if options.insert(name.to_owned(), value.clone()).is_some() {
            return Err(CliError::Usage(format!("option --{name} given twice")));
        }
    }
    Ok(ParsedArgs {
        command,
        options,
        flags,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let p = parse_args(&argv(&["match", "--data", "d", "--dummies", "--out", "o"])).unwrap();
        assert_eq!(p.command, "match");
        assert_eq!(p.require("data").unwrap(), "d");
        assert_eq!(p.require("out").unwrap(), "o");
        assert!(p.has_flag("dummies"));
        assert!(!p.has_flag("help"));
    }

    #[test]
    fn typed_accessors_parse_and_default() {
        let p = parse_args(&argv(&["generate", "--scale", "0.25", "--seed", "7"])).unwrap();
        assert_eq!(p.get_f64("scale", 1.0).unwrap(), 0.25);
        assert_eq!(p.get_u64("seed", 0).unwrap(), 7);
        assert_eq!(p.get_f64("missing", 0.5).unwrap(), 0.5);
        assert!(p.get_f64("seed", 0.0).is_ok());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_args(&argv(&[])).is_err());
        assert!(parse_args(&argv(&["generate", "stray"])).is_err());
        assert!(parse_args(&argv(&["generate", "--out"])).is_err());
        assert!(parse_args(&argv(&["generate", "--out", "a", "--out", "b"])).is_err());
        let p = parse_args(&argv(&["generate", "--scale", "abc"])).unwrap();
        assert!(p.get_f64("scale", 1.0).is_err());
    }
}
