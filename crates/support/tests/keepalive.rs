//! Raw-`TcpStream` tests for the persistent-connection server: keep-alive
//! request sequencing on one socket, interleaving across sockets,
//! per-connection error isolation, HTTP/1.0 and `Connection: close`
//! semantics, idle-timeout eviction, the connection-cap 503 path, and the
//! connection metrics (`http.open_connections`,
//! `http.requests_per_conn`, `http.rejected`).

use entmatcher_support::telemetry::expose::{
    MetricsServer, Response, Routes, ServerConfig,
};
use entmatcher_support::telemetry::Telemetry;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The exposition server holds the registry for a thread's lifetime, so
/// tests give it `'static` standalone registries.
fn leaked_registry() -> &'static Telemetry {
    Box::leak(Box::new(Telemetry::new()))
}

/// Starts a server with a short `/metrics` render interval and the given
/// connection-model overrides.
fn start(t: &'static Telemetry, cfg: ServerConfig, routes: Option<Routes>) -> MetricsServer {
    t.set_enabled(true);
    MetricsServer::start_with_config(t, "127.0.0.1:0", cfg, routes).expect("bind ephemeral port")
}

fn short_interval() -> ServerConfig {
    ServerConfig {
        interval: Duration::from_millis(5),
        ..ServerConfig::default()
    }
}

/// Writes one request on an already-open stream. `close` appends
/// `Connection: close`.
fn send_get(stream: &mut TcpStream, path: &str, close: bool) {
    let conn = if close { "Connection: close\r\n" } else { "" };
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n{conn}\r\n").expect("send request");
}

/// Reads exactly one response off the stream. In lockstep request/response
/// exchanges nothing follows the response, so a fresh buffer suffices;
/// pipelined tests use [`read_response_buffered`] to carry the tail.
fn read_response(stream: &mut TcpStream) -> (String, String) {
    let mut buf = Vec::new();
    let (head, body) = read_response_buffered(stream, &mut buf);
    assert!(buf.is_empty(), "unexpected bytes after the response: {buf:?}");
    (head, body)
}

/// Reads one response (head by `\r\n\r\n`, body by `Content-Length`),
/// leaving any bytes past it — the next pipelined response — in `buf`.
fn read_response_buffered(stream: &mut TcpStream, buf: &mut Vec<u8>) -> (String, String) {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed mid-response: {buf:?}");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end - 4]).into_owned();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().expect("numeric Content-Length"))
        })
        .expect("response declares Content-Length");
    while buf.len() < head_end + content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&buf[head_end..head_end + content_length]).into_owned();
    buf.drain(..head_end + content_length);
    (head, body)
}

/// True once the peer has closed: a read returns 0 (EOF) instead of
/// blocking for more requests.
fn reads_eof(stream: &mut TcpStream, wait: Duration) -> bool {
    stream.set_read_timeout(Some(wait)).expect("set timeout");
    let mut byte = [0u8; 1];
    matches!(stream.read(&mut byte), Ok(0))
}

#[test]
fn many_sequential_requests_reuse_one_connection() {
    let t = leaked_registry();
    let server = start(t, short_interval(), None);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");

    for i in 0..8 {
        send_get(&mut stream, "/healthz", false);
        let (head, body) = read_response(&mut stream);
        assert!(head.starts_with("HTTP/1.1 200"), "request {i}: {head}");
        assert!(head.contains("Connection: keep-alive"), "request {i}: {head}");
        assert_eq!(body, "ok\n");
    }
    // The final request asks to close; the server echoes and hangs up.
    send_get(&mut stream, "/healthz", true);
    let (head, _) = read_response(&mut stream);
    assert!(head.contains("Connection: close"), "{head}");
    assert!(reads_eof(&mut stream, Duration::from_secs(2)), "server must close");

    server.shutdown();
    let trace = t.snapshot();
    let per_conn = trace
        .histogram("http.requests_per_conn")
        .expect("requests_per_conn recorded");
    assert_eq!(per_conn.count, 1, "one connection closed");
    assert_eq!(per_conn.sum, 9.0, "nine requests on it: {per_conn:?}");
}

#[test]
fn interleaved_requests_across_sockets_stay_isolated() {
    let t = leaked_registry();
    let server = start(t, short_interval(), None);
    let mut a = TcpStream::connect(server.addr()).expect("connect a");
    let mut b = TcpStream::connect(server.addr()).expect("connect b");

    // a, b, a, b — each socket sees only its own responses, in order.
    send_get(&mut a, "/healthz", false);
    let (head, _) = read_response(&mut a);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    send_get(&mut b, "/metrics", false);
    let (_, body) = read_response(&mut b);
    assert!(body.contains("entmatcher_up 1"), "{body}");
    send_get(&mut a, "/nope", false);
    let (head, _) = read_response(&mut a);
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    send_get(&mut b, "/healthz", false);
    let (head, body) = read_response(&mut b);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");
    server.shutdown();
}

#[test]
fn open_connections_gauge_tracks_sockets() {
    let t = leaked_registry();
    let server = start(t, short_interval(), None);
    let mut a = TcpStream::connect(server.addr()).expect("connect a");
    let mut b = TcpStream::connect(server.addr()).expect("connect b");
    send_get(&mut a, "/healthz", false);
    let _ = read_response(&mut a);
    send_get(&mut b, "/healthz", false);
    let _ = read_response(&mut b);
    // Both sockets answered, both still open.
    send_get(&mut a, "/metrics", false);
    let (_, body) = read_response(&mut a);
    assert!(
        body.contains("entmatcher_http_open_connections 2"),
        "{body}"
    );
    drop(b);
    // Eventually the server notices b's EOF and the gauge drops to 1 (the
    // /metrics page re-renders every 5 ms here).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        std::thread::sleep(Duration::from_millis(10));
        send_get(&mut a, "/metrics", false);
        let (_, body) = read_response(&mut a);
        if body.contains("entmatcher_http_open_connections 1") {
            break;
        }
        assert!(Instant::now() < deadline, "gauge never dropped:\n{body}");
    }
    server.shutdown();
}

#[test]
fn malformed_second_request_closes_only_that_connection() {
    let t = leaked_registry();
    let server = start(t, short_interval(), None);
    let mut bad = TcpStream::connect(server.addr()).expect("connect bad");
    let mut good = TcpStream::connect(server.addr()).expect("connect good");

    // First request on `bad` is fine...
    send_get(&mut bad, "/healthz", false);
    let (head, _) = read_response(&mut bad);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    // ...the second is garbage: 400 and the connection closes.
    bad.write_all(b"not http\r\n\r\n").expect("send garbage");
    let (head, _) = read_response(&mut bad);
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    assert!(head.contains("Connection: close"), "errors close: {head}");
    assert!(reads_eof(&mut bad, Duration::from_secs(2)));

    // The other connection is untouched and still keep-alive.
    send_get(&mut good, "/healthz", false);
    let (head, _) = read_response(&mut good);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("Connection: keep-alive"), "{head}");
    server.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let t = leaked_registry();
    let server = start(t, short_interval(), None);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    // Two requests in one write: the leftover bytes after the first parse
    // must be carried over, not dropped.
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\nGET /nope HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        .expect("send pipelined pair");
    let mut carry = Vec::new();
    let (head, body) = read_response_buffered(&mut stream, &mut carry);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");
    let (head, _) = read_response_buffered(&mut stream, &mut carry);
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    server.shutdown();
}

#[test]
fn http10_closes_unless_keepalive_requested() {
    let t = leaked_registry();
    let server = start(t, short_interval(), None);

    // Plain HTTP/1.0: answered, then closed.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write!(stream, "GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n").expect("send");
    let (head, body) = read_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("Connection: close"), "{head}");
    assert_eq!(body, "ok\n");
    assert!(reads_eof(&mut stream, Duration::from_secs(2)));

    // HTTP/1.0 with an explicit keep-alive opt-in stays open.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write!(
        stream,
        "GET /healthz HTTP/1.0\r\nHost: x\r\nConnection: keep-alive\r\n\r\n"
    )
    .expect("send");
    let (head, _) = read_response(&mut stream);
    assert!(head.contains("Connection: keep-alive"), "{head}");
    send_get(&mut stream, "/healthz", true);
    let (head, _) = read_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    server.shutdown();
}

#[test]
fn transfer_encoding_and_bad_content_length_are_rejected() {
    let t = leaked_registry();
    let server = start(t, short_interval(), None);

    // Transfer-Encoding framing is unsupported: 411, connection closes.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write!(
        stream,
        "POST /healthz HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n"
    )
    .expect("send");
    let (head, _) = read_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 411"), "{head}");
    assert!(reads_eof(&mut stream, Duration::from_secs(2)));

    // A Content-Length that does not parse is a 400, not silently zero.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write!(
        stream,
        "POST /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n"
    )
    .expect("send");
    let (head, _) = read_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    server.shutdown();
}

#[test]
fn idle_connections_are_evicted() {
    let t = leaked_registry();
    let cfg = ServerConfig {
        idle_timeout: Duration::from_millis(150),
        ..short_interval()
    };
    let server = start(t, cfg, None);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    send_get(&mut stream, "/healthz", false);
    let (head, _) = read_response(&mut stream);
    assert!(head.contains("Connection: keep-alive"), "{head}");
    // Sit idle past the timeout: the server hangs up (EOF), freeing its
    // worker — the slowloris guard.
    assert!(
        reads_eof(&mut stream, Duration::from_secs(3)),
        "idle connection must be evicted"
    );
    server.shutdown();
}

#[test]
fn connection_cap_rejects_with_503_and_counts() {
    let t = leaked_registry();
    let cfg = ServerConfig {
        max_conns: 1,
        workers: 1,
        ..short_interval()
    };
    let server = start(t, cfg, None);

    // First connection occupies the only slot...
    let mut held = TcpStream::connect(server.addr()).expect("connect held");
    send_get(&mut held, "/healthz", false);
    let (head, _) = read_response(&mut held);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");

    // ...so the next arrival is rejected at the door with 503.
    let mut rejected = TcpStream::connect(server.addr()).expect("connect rejected");
    let mut text = String::new();
    rejected
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    rejected.read_to_string(&mut text).expect("read rejection");
    assert!(text.starts_with("HTTP/1.1 503"), "{text}");
    assert!(text.contains("Retry-After: 1"), "{text}");

    // Freeing the slot re-admits new connections.
    send_get(&mut held, "/healthz", true);
    let _ = read_response(&mut held);
    assert!(reads_eof(&mut held, Duration::from_secs(2)));
    let deadline = Instant::now() + Duration::from_secs(5);
    let body = loop {
        let mut retry = TcpStream::connect(server.addr()).expect("reconnect");
        send_get(&mut retry, "/metrics", true);
        let mut text = String::new();
        retry
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("set timeout");
        retry.read_to_string(&mut text).expect("read retry");
        if let Some((head, body)) = text.split_once("\r\n\r\n") {
            if head.starts_with("HTTP/1.1 200") {
                break body.to_owned();
            }
        }
        assert!(Instant::now() < deadline, "slot never freed: {text}");
        std::thread::sleep(Duration::from_millis(20));
    };
    // At least the first over-cap arrival was counted (retries racing the
    // slot release may add more).
    let rejected: u64 = body
        .lines()
        .find_map(|l| l.strip_prefix("entmatcher_http_rejected_total "))
        .expect("rejected counter rendered")
        .parse()
        .expect("integer counter");
    assert!(rejected >= 1, "{body}");
    server.shutdown();
}

#[test]
fn shutdown_drains_inflight_requests() {
    let t = leaked_registry();
    // A slow route lets a request be mid-flight when shutdown starts.
    let routes = Routes {
        paths: vec!["/slow".to_owned()],
        handler: Arc::new(|req| {
            (req.path == "/slow").then(|| {
                std::thread::sleep(Duration::from_millis(300));
                Response::text("200 OK", "slow done\n")
            })
        }),
    };
    let server = start(t, short_interval(), Some(routes));
    let addr = server.addr();

    let client = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        send_get(&mut stream, "/slow", false);
        read_response(&mut stream)
    });
    // Give the request time to reach the handler, then shut down while it
    // is still sleeping inside the route.
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();
    let (head, body) = client.join().expect("client thread");
    assert!(head.starts_with("HTTP/1.1 200"), "drained response: {head}");
    assert!(
        head.contains("Connection: close"),
        "shutdown forces close after the drain: {head}"
    );
    assert_eq!(body, "slow done\n");
}
