//! Bootstrap confidence intervals for alignment metrics.
//!
//! The paper reports point estimates; a faithful reproduction at reduced
//! scale needs error bars to tell real orderings from sampling noise. This
//! module resamples the *test links* with replacement and recomputes F1 on
//! each replicate, yielding percentile confidence intervals — and a paired
//! comparison that bootstraps the F1 *difference* of two prediction sets
//! over the same resampled links (the right test for "algorithm A beats
//! algorithm B on this dataset").

use crate::metrics::evaluate_links;
use entmatcher_graph::{AlignmentSet, Link};
use entmatcher_support::impl_json_struct;

/// A bootstrap percentile interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapInterval {
    /// The full-sample point estimate.
    pub point: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Number of bootstrap replicates.
    pub replicates: usize,
}

impl_json_struct!(BootstrapInterval { point, lo, hi, replicates });

/// Deterministic SplitMix64 stream for resampling.
struct Rng(u64);

impl Rng {
    fn next_usize(&mut self, bound: usize) -> usize {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) % bound.max(1) as u64) as usize
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Per-gold-link hit indicators for a prediction set.
fn hit_indicators(predicted: &[Link], gold: &AlignmentSet) -> Vec<bool> {
    let pred_set: std::collections::HashSet<(u32, u32)> =
        predicted.iter().map(|l| (l.source.0, l.target.0)).collect();
    gold.iter()
        .map(|l| pred_set.contains(&(l.source.0, l.target.0)))
        .collect()
}

/// F1 of a resampled indicator vector: recall is the resampled hit rate;
/// precision keeps the prediction count fixed (predictions are not resampled
/// — only which gold links are in the sample varies), scaling correct hits
/// by the resampling.
fn f1_from_indicators(correct: usize, n_gold: usize, n_pred: usize) -> f64 {
    if n_gold == 0 || n_pred == 0 {
        return 0.0;
    }
    let recall = correct as f64 / n_gold as f64;
    let precision = (correct as f64 / n_pred as f64).min(1.0);
    if precision + recall <= 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// Bootstraps a `level` (e.g. 0.95) percentile interval for the F1 of
/// `predicted` against `gold`, resampling the gold links' per-link hit
/// indicators with replacement (the prediction set stays fixed).
pub fn bootstrap_f1(
    predicted: &[Link],
    gold: &AlignmentSet,
    replicates: usize,
    level: f64,
    seed: u64,
) -> BootstrapInterval {
    assert!(
        (0.0..1.0).contains(&(1.0 - level)),
        "level must be in (0, 1)"
    );
    let point = evaluate_links(predicted, gold).f1;
    let hits = hit_indicators(predicted, gold);
    let n = hits.len();
    let n_pred = {
        let uniq: std::collections::HashSet<(u32, u32)> =
            predicted.iter().map(|l| (l.source.0, l.target.0)).collect();
        uniq.len()
    };
    if n == 0 || replicates == 0 {
        return BootstrapInterval {
            point,
            lo: point,
            hi: point,
            replicates,
        };
    }
    let mut rng = Rng(seed);
    let mut samples = Vec::with_capacity(replicates);
    for _ in 0..replicates {
        let correct = (0..n).filter(|_| hits[rng.next_usize(n)]).count();
        samples.push(f1_from_indicators(correct, n, n_pred));
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let alpha = (1.0 - level) / 2.0;
    BootstrapInterval {
        point,
        lo: percentile(&samples, alpha),
        hi: percentile(&samples, 1.0 - alpha),
        replicates,
    }
}

/// Paired bootstrap of `F1(a) - F1(b)`: both prediction sets are scored on
/// the *same* resampled gold indices, so shared variance cancels. A `lo`
/// above zero means "a beats b" at the chosen confidence level.
pub fn bootstrap_f1_difference(
    a: &[Link],
    b: &[Link],
    gold: &AlignmentSet,
    replicates: usize,
    level: f64,
    seed: u64,
) -> BootstrapInterval {
    let point = evaluate_links(a, gold).f1 - evaluate_links(b, gold).f1;
    let hits_a = hit_indicators(a, gold);
    let hits_b = hit_indicators(b, gold);
    let n = hits_a.len();
    let uniq = |p: &[Link]| -> usize {
        p.iter()
            .map(|l| (l.source.0, l.target.0))
            .collect::<std::collections::HashSet<_>>()
            .len()
    };
    let (na, nb) = (uniq(a), uniq(b));
    if n == 0 || replicates == 0 {
        return BootstrapInterval {
            point,
            lo: point,
            hi: point,
            replicates,
        };
    }
    let mut rng = Rng(seed);
    let mut samples = Vec::with_capacity(replicates);
    for _ in 0..replicates {
        let mut ca = 0usize;
        let mut cb = 0usize;
        for _ in 0..n {
            let idx = rng.next_usize(n);
            ca += usize::from(hits_a[idx]);
            cb += usize::from(hits_b[idx]);
        }
        samples.push(f1_from_indicators(ca, n, na) - f1_from_indicators(cb, n, nb));
    }
    samples.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let alpha = (1.0 - level) / 2.0;
    BootstrapInterval {
        point,
        lo: percentile(&samples, alpha),
        hi: percentile(&samples, 1.0 - alpha),
        replicates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entmatcher_graph::EntityId;

    fn link(s: u32, t: u32) -> Link {
        Link::new(EntityId(s), EntityId(t))
    }

    fn gold(n: u32) -> AlignmentSet {
        (0..n).map(|i| link(i, i)).collect()
    }

    #[test]
    fn interval_contains_point_estimate() {
        let g = gold(100);
        // 80 correct + 20 wrong predictions.
        let mut pred: Vec<Link> = (0..80).map(|i| link(i, i)).collect();
        pred.extend((80..100).map(|i| link(i, i + 500)));
        let ci = bootstrap_f1(&pred, &g, 200, 0.95, 1);
        assert!((ci.point - 0.8).abs() < 1e-9);
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        assert!(ci.hi - ci.lo > 0.01, "interval should have width");
        assert!(ci.hi - ci.lo < 0.4, "interval should not be absurdly wide");
    }

    #[test]
    fn perfect_predictions_have_degenerate_interval() {
        let g = gold(50);
        let pred: Vec<Link> = (0..50).map(|i| link(i, i)).collect();
        let ci = bootstrap_f1(&pred, &g, 100, 0.95, 2);
        assert_eq!(ci.point, 1.0);
        // Every indicator is a hit, so every replicate is exactly 1.
        assert_eq!(ci.lo, 1.0);
        assert_eq!(ci.hi, 1.0);
    }

    #[test]
    fn paired_difference_detects_a_clear_winner() {
        let g = gold(200);
        let good: Vec<Link> = (0..180).map(|i| link(i, i)).collect();
        let bad: Vec<Link> = (0..100).map(|i| link(i, i)).collect();
        let d = bootstrap_f1_difference(&good, &bad, &g, 300, 0.95, 3);
        assert!(d.point > 0.0);
        assert!(d.lo > 0.0, "a clear winner should have lo > 0: {:?}", d);
    }

    #[test]
    fn paired_difference_of_identical_sets_is_zero() {
        let g = gold(50);
        let pred: Vec<Link> = (0..40).map(|i| link(i, i)).collect();
        let d = bootstrap_f1_difference(&pred, &pred, &g, 100, 0.95, 4);
        assert_eq!(d.point, 0.0);
        assert_eq!(d.lo, 0.0);
        assert_eq!(d.hi, 0.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = gold(60);
        let pred: Vec<Link> = (0..45).map(|i| link(i, i)).collect();
        let a = bootstrap_f1(&pred, &g, 100, 0.9, 7);
        let b = bootstrap_f1(&pred, &g, 100, 0.9, 7);
        assert_eq!(a, b);
    }
}
