//! Embedding-space geometry diagnostics: hubness and isolation.
//!
//! The paper motivates CSLS/RInf with the *hubness* issue (some targets
//! appear as the top-1 neighbour of many sources) and the *isolation*
//! issue (some targets never appear near anything) — §3.3. This module
//! quantifies both on a candidate score matrix, so the reproduction can
//! show the issues exist in the synthetic embedding spaces and that the
//! score optimizers reduce them.

use entmatcher_linalg::parallel::{par_map_rows_grained, Grain};
use entmatcher_linalg::rank::top_k_desc;
use entmatcher_linalg::stats::{mean, std_dev};
use entmatcher_linalg::Matrix;
use entmatcher_support::impl_json_struct;

/// Hubness/isolation summary of a score matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometryReport {
    /// Skewness of the k-occurrence distribution (third standardized
    /// moment). Near 0 for a well-spread space; strongly positive when a
    /// few hubs absorb most top-k slots.
    pub k_occurrence_skewness: f64,
    /// Largest single target's share of all top-k slots.
    pub max_hub_share: f64,
    /// Fraction of targets that appear in no source's top-k list (the
    /// isolated points).
    pub isolation_rate: f64,
    /// The k used.
    pub k: usize,
}

impl_json_struct!(GeometryReport {
    k_occurrence_skewness,
    max_hub_share,
    isolation_rate,
    k
});

/// Counts, for every target column, how many sources list it among their
/// top-k — the *k-occurrence* vector `N_k`.
pub fn k_occurrence(scores: &Matrix, k: usize) -> Vec<u32> {
    let (n_s, n_t) = scores.shape();
    let mut counts = vec![0u32; n_t];
    if n_s == 0 || n_t == 0 {
        return counts;
    }
    let tops: Vec<Vec<usize>> =
        par_map_rows_grained(n_s, Grain::for_item_cost(n_t), |i| {
            top_k_desc(scores.row(i), k)
        });
    for row in tops {
        for j in row {
            counts[j] += 1;
        }
    }
    counts
}

/// Computes the geometry report for a candidate score matrix.
pub fn geometry_report(scores: &Matrix, k: usize) -> GeometryReport {
    let counts = k_occurrence(scores, k);
    let as_f32: Vec<f32> = counts.iter().map(|&c| c as f32).collect();
    let m = mean(&as_f32) as f64;
    let sd = std_dev(&as_f32) as f64;
    let skewness = if sd > 1e-12 && !counts.is_empty() {
        counts
            .iter()
            .map(|&c| {
                let z = (c as f64 - m) / sd;
                z * z * z
            })
            .sum::<f64>()
            / counts.len() as f64
    } else {
        0.0
    };
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    let max_share = if total > 0 {
        counts.iter().copied().max().unwrap_or(0) as f64 / total as f64
    } else {
        0.0
    };
    let isolated = counts.iter().filter(|&&c| c == 0).count();
    let isolation_rate = if counts.is_empty() {
        0.0
    } else {
        isolated as f64 / counts.len() as f64
    };
    GeometryReport {
        k_occurrence_skewness: skewness,
        max_hub_share: max_share,
        isolation_rate,
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_occurrence_counts_top_slots() {
        // Every source's top-1 is column 0 => counts [n, 0, 0].
        let s = Matrix::from_fn(4, 3, |_, c| if c == 0 { 0.9 } else { 0.1 });
        assert_eq!(k_occurrence(&s, 1), vec![4, 0, 0]);
    }

    #[test]
    fn hub_space_has_positive_skew_and_isolation() {
        // One hub column dominating 10 sources, the rest untouched.
        let s = Matrix::from_fn(
            10,
            10,
            |_, c| if c == 0 { 0.9 } else { 0.1 * c as f32 / 10.0 },
        );
        let g = geometry_report(&s, 1);
        assert!(
            g.k_occurrence_skewness > 1.0,
            "skew {:.2}",
            g.k_occurrence_skewness
        );
        assert_eq!(g.max_hub_share, 1.0);
        assert!(g.isolation_rate >= 0.8);
    }

    #[test]
    fn diagonal_space_is_balanced() {
        let n = 10;
        let s = Matrix::from_fn(n, n, |r, c| if r == c { 0.9 } else { 0.1 });
        let g = geometry_report(&s, 1);
        assert!(g.k_occurrence_skewness.abs() < 1e-9);
        assert_eq!(g.isolation_rate, 0.0);
        assert!((g.max_hub_share - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_is_degenerate_zeroes() {
        let g = geometry_report(&Matrix::zeros(0, 0), 5);
        assert_eq!(g.isolation_rate, 0.0);
        assert_eq!(g.k_occurrence_skewness, 0.0);
    }
}
