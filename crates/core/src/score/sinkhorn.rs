//! The Sinkhorn operation (paper Algorithm 6, Equation 3).
//!
//! `Sinkhorn^l(S)` alternates row and column normalization of `exp(S/tau)`.
//! As `l` grows the result approaches a doubly-stochastic matrix that
//! implicitly encodes a (soft) 1-to-1 assignment; Greedy on the converged
//! matrix approximates the optimal-transport solution. The paper tunes
//! `l = 100` (Figure 7) as the effectiveness/efficiency sweet spot.

use super::ScoreOptimizer;
use entmatcher_linalg::parallel::par_row_chunks_mut;
use entmatcher_linalg::Matrix;
use entmatcher_support::telemetry;

/// Sinkhorn score optimizer.
#[derive(Debug, Clone, Copy)]
pub struct Sinkhorn {
    /// Number of row+column normalization rounds (`l`).
    pub iterations: usize,
    /// Softmax temperature: scores are divided by it before
    /// exponentiation. Cosine scores live in `[-1, 1]`, so a temperature
    /// well below 1 is needed for the exponential to discriminate — the
    /// same role the logit-scaling constant plays in the reference
    /// implementations.
    pub temperature: f32,
}

impl Default for Sinkhorn {
    fn default() -> Self {
        Sinkhorn {
            iterations: 100,
            temperature: 0.02,
        }
    }
}

impl ScoreOptimizer for Sinkhorn {
    fn name(&self) -> &'static str {
        "Sinkhorn"
    }

    fn apply(&self, mut scores: Matrix) -> Matrix {
        assert!(self.temperature > 0.0, "temperature must be positive");
        let (n_s, n_t) = scores.shape();
        if n_s == 0 || n_t == 0 {
            return scores;
        }
        // exp((S - max) / tau): the global shift cancels in the
        // normalizations but keeps the exponentials in range.
        let max = scores.max_element().unwrap_or(0.0);
        let inv_tau = 1.0 / self.temperature;
        scores.map_inplace(|v| ((v - max) * inv_tau).exp());

        let tracing = telemetry::enabled();
        let mut col_sums = vec![0.0f32; n_t];
        for _ in 0..self.iterations {
            // Row normalization (parallel, rows are contiguous).
            par_row_chunks_mut(scores.as_mut_slice(), n_t, |_, chunk| {
                for row in chunk.chunks_exact_mut(n_t) {
                    let sum: f32 = row.iter().sum();
                    if sum > f32::MIN_POSITIVE {
                        let inv = 1.0 / sum;
                        for v in row.iter_mut() {
                            *v *= inv;
                        }
                    }
                }
            });
            // Column normalization: accumulate sums, then scale.
            col_sums.iter_mut().for_each(|v| *v = 0.0);
            for (_, row) in scores.iter_rows() {
                for (s, &v) in col_sums.iter_mut().zip(row.iter()) {
                    *s += v;
                }
            }
            if tracing {
                // The column sums after row normalization are the natural
                // convergence signal: their max deviation from 1 shrinks
                // to 0 as the matrix approaches double stochasticity.
                let dev = col_sums
                    .iter()
                    .fold(0.0f32, |acc, &s| acc.max((s - 1.0).abs()));
                telemetry::add("sinkhorn.iterations", 1);
                telemetry::observe("sinkhorn.col_dev", dev as f64);
            }
            let inv: Vec<f32> = col_sums
                .iter()
                .map(|&s| if s > f32::MIN_POSITIVE { 1.0 / s } else { 0.0 })
                .collect();
            let inv_ref = &inv;
            par_row_chunks_mut(scores.as_mut_slice(), n_t, |_, chunk| {
                for row in chunk.chunks_exact_mut(n_t) {
                    for (v, &iv) in row.iter_mut().zip(inv_ref.iter()) {
                        *v *= iv;
                    }
                }
            });
        }
        scores
    }

    fn aux_bytes(&self, _n_s: usize, n_t: usize) -> usize {
        // In-place on the score matrix; only the column-sum vectors.
        2 * n_t * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entmatcher_linalg::argmax;
    use entmatcher_linalg::ops::{col_sums, row_sums};

    #[test]
    fn output_is_approximately_doubly_stochastic() {
        let s = Matrix::from_fn(6, 6, |r, c| ((r * 5 + c * 3) % 7) as f32 * 0.1);
        let out = Sinkhorn {
            iterations: 200,
            temperature: 0.1,
        }
        .apply(s);
        for r in row_sums(&out) {
            assert!((r - 1.0).abs() < 1e-3, "row sum {r}");
        }
        for c in col_sums(&out) {
            assert!((c - 1.0).abs() < 0.05, "col sum {c}");
        }
    }

    #[test]
    fn converges_to_permutation_on_clean_input() {
        // A diagonally dominant matrix must converge to ~identity.
        let n = 5;
        let s = Matrix::from_fn(n, n, |r, c| if r == c { 0.9 } else { 0.2 });
        let out = Sinkhorn {
            iterations: 100,
            temperature: 0.05,
        }
        .apply(s);
        for i in 0..n {
            assert_eq!(argmax(out.row(i)), Some(i));
            assert!(out.get(i, i) > 0.9, "diagonal mass {}", out.get(i, i));
        }
    }

    #[test]
    fn resolves_greedy_conflicts_via_implicit_one_to_one() {
        // Both sources prefer target 0, but a 1-to-1 assignment wants
        // (0 -> 0, 1 -> 1). Greedy on raw scores double-books target 0.
        let s = Matrix::from_vec(2, 2, vec![0.95, 0.50, 0.90, 0.88]).unwrap();
        assert_eq!(argmax(s.row(1)), Some(0));
        let out = Sinkhorn::default().apply(s);
        assert_eq!(argmax(out.row(0)), Some(0));
        assert_eq!(argmax(out.row(1)), Some(1));
    }

    #[test]
    fn more_iterations_approach_double_stochasticity() {
        // Asymmetric instance: after one round the column sums still
        // deviate from 1; convergence tightens them monotonically.
        let s = Matrix::from_fn(4, 4, |r, c| ((r * 5 + c * 3) % 7) as f32 * 0.1);
        let deviation = |m: &Matrix| -> f32 {
            col_sums(m).iter().map(|c| (c - 1.0).abs()).sum::<f32>()
                + row_sums(m).iter().map(|r| (r - 1.0).abs()).sum::<f32>()
        };
        let few = Sinkhorn {
            iterations: 1,
            temperature: 0.1,
        }
        .apply(s.clone());
        let many = Sinkhorn {
            iterations: 100,
            temperature: 0.1,
        }
        .apply(s);
        assert!(
            deviation(&many) < deviation(&few),
            "more iterations must reduce deviation: {} vs {}",
            deviation(&many),
            deviation(&few)
        );
    }

    #[test]
    fn zero_iterations_is_exp_only() {
        let s = Matrix::from_vec(1, 2, vec![0.0, 1.0]).unwrap();
        let out = Sinkhorn {
            iterations: 0,
            temperature: 1.0,
        }
        .apply(s);
        // exp shifted by max: exp(-1), exp(0).
        assert!((out.get(0, 1) - 1.0).abs() < 1e-6);
        assert!((out.get(0, 0) - (-1.0f32).exp()).abs() < 1e-6);
    }

    #[test]
    fn telemetry_counts_iterations_and_convergence() {
        let _guard = crate::telemetry_test_lock();
        telemetry::reset();
        telemetry::set_enabled(true);
        let s = Matrix::from_fn(6, 6, |r, c| ((r * 5 + c * 3) % 7) as f32 * 0.1);
        Sinkhorn {
            iterations: 25,
            temperature: 0.1,
        }
        .apply(s);
        let trace = telemetry::snapshot();
        telemetry::set_enabled(false);
        assert!(trace.counter("sinkhorn.iterations").unwrap_or(0) >= 25);
        let dev = trace.histogram("sinkhorn.col_dev").expect("col_dev recorded");
        assert!(dev.count >= 25);
        // Deviations shrink toward 0 as the matrix converges, so the
        // minimum observed deviation must be small.
        assert!(dev.min < 0.05, "converged deviation {}", dev.min);
    }

    #[test]
    fn rectangular_input_survives() {
        let s = Matrix::from_fn(3, 7, |r, c| ((r + c) % 4) as f32 * 0.2);
        let out = Sinkhorn::default().apply(s);
        assert_eq!(out.shape(), (3, 7));
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }
}
