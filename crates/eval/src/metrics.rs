//! Alignment quality metrics (paper §4.2).
//!
//! *Precision* = correct predictions / all predictions;
//! *recall* = correct predictions / gold links (equivalent to Hits@1 in
//! prior work); *F1* = their harmonic mean. On classic 1-to-1 benchmarks
//! where every method predicts for every test source, P = R = F1; the
//! three diverge under the unmatchable and non-1-to-1 settings (§5).

use entmatcher_graph::{AlignmentSet, Link};
use entmatcher_support::impl_json_struct;
use std::collections::HashSet;

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentScores {
    /// Fraction of predictions that are gold links.
    pub precision: f64,
    /// Fraction of gold links recovered.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Number of predictions made.
    pub predicted: usize,
    /// Number of correct predictions.
    pub correct: usize,
    /// Number of gold links.
    pub gold: usize,
}

impl_json_struct!(AlignmentScores {
    precision,
    recall,
    f1,
    predicted,
    correct,
    gold
});

impl AlignmentScores {
    /// Scores a prediction set against gold links. Duplicate predictions
    /// count once; a prediction is correct iff it is a gold link.
    pub fn compute(predicted: &[Link], gold: &AlignmentSet) -> Self {
        let gold_set: HashSet<(u32, u32)> = gold.iter().map(|l| (l.source.0, l.target.0)).collect();
        let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(predicted.len());
        let mut correct = 0usize;
        for l in predicted {
            if seen.insert((l.source.0, l.target.0)) && gold_set.contains(&(l.source.0, l.target.0))
            {
                correct += 1;
            }
        }
        let n_pred = seen.len();
        let n_gold = gold.len();
        let precision = if n_pred == 0 {
            0.0
        } else {
            correct as f64 / n_pred as f64
        };
        let recall = if n_gold == 0 {
            0.0
        } else {
            correct as f64 / n_gold as f64
        };
        let f1 = if precision + recall <= 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        AlignmentScores {
            precision,
            recall,
            f1,
            predicted: n_pred,
            correct,
            gold: n_gold,
        }
    }
}

/// Convenience wrapper over [`AlignmentScores::compute`].
pub fn evaluate_links(predicted: &[Link], gold: &AlignmentSet) -> AlignmentScores {
    AlignmentScores::compute(predicted, gold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use entmatcher_graph::EntityId;

    fn link(s: u32, t: u32) -> Link {
        Link::new(EntityId(s), EntityId(t))
    }

    #[test]
    fn perfect_prediction() {
        let gold = AlignmentSet::new(vec![link(0, 0), link(1, 1)]);
        let s = evaluate_links(&[link(0, 0), link(1, 1)], &gold);
        assert_eq!(s.f1, 1.0);
        assert_eq!(s.correct, 2);
    }

    #[test]
    fn one_to_one_full_coverage_makes_p_equal_r() {
        // Paper §4.3: when every test source gets exactly one prediction,
        // precision == recall == F1.
        let gold = AlignmentSet::new(vec![link(0, 0), link(1, 1), link(2, 2), link(3, 3)]);
        let pred = vec![link(0, 0), link(1, 2), link(2, 1), link(3, 3)];
        let s = evaluate_links(&pred, &gold);
        assert_eq!(s.precision, s.recall);
        assert_eq!(s.precision, 0.5);
        assert!((s.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn over_prediction_hurts_precision_only() {
        let gold = AlignmentSet::new(vec![link(0, 0)]);
        // One correct prediction plus one spurious prediction for an
        // unmatchable source.
        let s = evaluate_links(&[link(0, 0), link(7, 3)], &gold);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.precision, 0.5);
    }

    #[test]
    fn under_prediction_hurts_recall_only() {
        let gold = AlignmentSet::new(vec![link(0, 0), link(1, 1)]);
        let s = evaluate_links(&[link(0, 0)], &gold);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.5);
    }

    #[test]
    fn non_one_to_one_gold_recall_ceiling() {
        // Source 0 has two gold targets; a single prediction caps recall.
        let gold = AlignmentSet::new(vec![link(0, 0), link(0, 1)]);
        let s = evaluate_links(&[link(0, 0)], &gold);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.5);
    }

    #[test]
    fn duplicates_count_once() {
        let gold = AlignmentSet::new(vec![link(0, 0)]);
        let s = evaluate_links(&[link(0, 0), link(0, 0)], &gold);
        assert_eq!(s.predicted, 1);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn empty_cases() {
        let gold = AlignmentSet::new(vec![link(0, 0)]);
        let s = evaluate_links(&[], &gold);
        assert_eq!(s.f1, 0.0);
        let empty_gold = AlignmentSet::default();
        let s2 = evaluate_links(&[link(0, 0)], &empty_gold);
        assert_eq!(s2.recall, 0.0);
        assert_eq!(s2.f1, 0.0);
    }
}
