//! Facade-level integration of the extension APIs: streaming matching,
//! LSH blocking, multi-assignment matchers, ranking metrics, geometry
//! diagnostics and bootstrap significance — all driven through the public
//! `entmatcher` crate exactly as a downstream user would.

use entmatcher::core::blocking::LshBlocker;
use entmatcher::core::streaming::{streaming_csls, streaming_greedy};
use entmatcher::core::{similarity_matrix, ProbabilisticMatcher, ThresholdMatcher};
use entmatcher::eval::geometry::geometry_report;
use entmatcher::eval::ranking::ranking_report;
use entmatcher::eval::significance::{bootstrap_f1, bootstrap_f1_difference};
use entmatcher::prelude::*;

fn prepared() -> (KgPair, MatchTask, Matrix, Matrix) {
    let spec = entmatcher::data::benchmarks::dbp15k("D-Z", 0.04);
    let pair = generate_pair(&spec);
    let emb = RreaEncoder::default().encode(&pair);
    let task = MatchTask::from_pair(&pair);
    let (src, tgt) = task.candidate_embeddings(&emb);
    (pair, task, src, tgt)
}

#[test]
fn streaming_kernels_agree_with_dense_pipelines() {
    let (_, task, src, tgt) = prepared();
    let ctx = MatchContext::default();
    let dense_dinf = AlgorithmPreset::DInf.build().execute(&src, &tgt, &ctx).matching;
    let stream_dinf = streaming_greedy(&src, &tgt, SimilarityMetric::Cosine, 256);
    assert_eq!(dense_dinf, stream_dinf);

    let dense_csls = AlgorithmPreset::Csls.build().execute(&src, &tgt, &ctx).matching;
    let stream_csls = streaming_csls(&src, &tgt, SimilarityMetric::Cosine, 10, 256);
    assert_eq!(dense_csls, stream_csls);

    // Equal decisions imply equal F1 — the scalability extension costs
    // nothing in quality.
    let f1 = |m: &Matching| evaluate_links(&task.matching_to_links(m), &task.gold).f1;
    assert_eq!(f1(&dense_csls), f1(&stream_csls));
}

#[test]
fn lsh_blocking_keeps_most_quality_with_fraction_of_comparisons() {
    let (_, task, src, tgt) = prepared();
    let dense = AlgorithmPreset::DInf
        .build()
        .execute(&src, &tgt, &MatchContext::default())
        .matching;
    let dense_f1 = evaluate_links(&task.matching_to_links(&dense), &task.gold).f1;

    let blocker = LshBlocker { bits: 10, tables: 6, seed: 3 };
    let blocks = blocker.block(&src, &tgt);
    let ratio = LshBlocker::candidate_ratio(&blocks, tgt.rows());
    assert!(ratio < 0.5, "blocking should prune comparisons: {ratio:.3}");
    let blocked = blocker.blocked_greedy(&src, &tgt);
    let blocked_f1 = evaluate_links(&task.matching_to_links(&blocked), &task.gold).f1;
    assert!(
        blocked_f1 > dense_f1 * 0.75,
        "blocked F1 {blocked_f1:.3} fell too far below dense {dense_f1:.3}"
    );
}

#[test]
fn ranking_and_geometry_reports_are_consistent_with_f1() {
    let (_, task, src, tgt) = prepared();
    let raw = similarity_matrix(&src, &tgt, SimilarityMetric::Cosine);
    let rank = ranking_report(&task, &raw);
    let dinf = AlgorithmPreset::DInf
        .build()
        .execute(&src, &tgt, &MatchContext::default())
        .matching;
    let f1 = evaluate_links(&task.matching_to_links(&dinf), &task.gold).f1;
    // Hits@1 over gold-linked candidates equals DInf recall when every
    // candidate is matchable (classic 1-to-1 setting).
    assert!((rank.hits_at_1 - f1).abs() < 1e-9, "hits@1 {} vs F1 {}", rank.hits_at_1, f1);
    assert!(rank.hits_at_10 >= rank.hits_at_5);
    assert!(rank.hits_at_5 >= rank.hits_at_1);
    assert!(rank.mrr >= rank.hits_at_1);

    let geom = geometry_report(&raw, 1);
    assert!(geom.k_occurrence_skewness.is_finite());
    assert!(geom.isolation_rate >= 0.0 && geom.isolation_rate <= 1.0);
}

#[test]
fn multi_assignment_matchers_behave_on_one_to_one_data() {
    // On clean 1-to-1 data, a tight threshold band behaves almost like
    // greedy: most sources get exactly one prediction.
    let (_, task, src, tgt) = prepared();
    let raw = similarity_matrix(&src, &tgt, SimilarityMetric::Cosine);
    let multi = ThresholdMatcher::default().run_multi(&raw);
    assert_eq!(multi.assignments().len(), task.num_sources());
    let avg = multi.total_predictions() as f64 / task.num_sources() as f64;
    assert!(avg < 2.0, "1-to-1 data should not explode predictions: avg {avg:.2}");
    let prob = ProbabilisticMatcher::default().run_multi(&raw);
    assert_eq!(prob.assignments().len(), task.num_sources());
}

#[test]
fn significance_separates_real_gaps_from_self_comparison() {
    let (_, task, src, tgt) = prepared();
    let ctx = MatchContext::default();
    let dinf = task.matching_to_links(
        &AlgorithmPreset::DInf.build().execute(&src, &tgt, &ctx).matching,
    );
    let sink = task.matching_to_links(
        &AlgorithmPreset::Sinkhorn.build().execute(&src, &tgt, &ctx).matching,
    );
    let ci = bootstrap_f1(&sink, &task.gold, 200, 0.95, 5);
    assert!(ci.lo <= ci.point && ci.point <= ci.hi);
    let self_diff = bootstrap_f1_difference(&dinf, &dinf, &task.gold, 200, 0.95, 6);
    assert_eq!(self_diff.point, 0.0);
    assert_eq!(self_diff.lo, 0.0);
}
