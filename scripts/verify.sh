#!/usr/bin/env sh
# Workspace verification: offline release build + the full test suite.
#
# `--offline` is the point, not an optimization: this workspace has a
# zero-external-dependency policy (see DESIGN.md §5), so building must
# never touch the network. If this script fails with a resolver error,
# someone added an external dependency — remove it or port the needed
# functionality into `crates/support`.
#
# ENTMATCHER_BENCH_QUICK=1 makes the `harness = false` bench binaries run
# each benchmark body exactly once if a runner invokes them, keeping the
# whole script fast while still exercising every bench target's code.
set -eu

cd "$(dirname "$0")/.."

export ENTMATCHER_BENCH_QUICK=1

# --benches/--bins replace (not extend) cargo's default target selection:
# both are listed so the bench targets AND the entmatcher binary (needed by
# the smoke test below) are built.
cargo build --release --offline --workspace --bins --benches
cargo test -q --offline --workspace

# Telemetry smoke test: run a small end-to-end match with --trace and
# check the exported JSON parses and contains the pipeline stage spans.
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
ENTMATCHER="target/release/entmatcher"
"$ENTMATCHER" generate --preset S-W --scale 0.02 --out "$SMOKE/data" >/dev/null
"$ENTMATCHER" encode --data "$SMOKE/data" --encoder name --out "$SMOKE/emb" >/dev/null
"$ENTMATCHER" match --data "$SMOKE/data" --embeddings "$SMOKE/emb" \
    --algorithm csls --trace "$SMOKE/trace.json" --out "$SMOKE/pairs.tsv" >/dev/null
RENDERED=$("$ENTMATCHER" trace --file "$SMOKE/trace.json")
for span in pipeline similarity optimize match; do
    echo "$RENDERED" | grep -q "$span" || {
        echo "verify: $span span missing from trace" >&2
        exit 1
    }
done
# The pad span needs an unbalanced candidate set + dummy padding: DBP15K+
# has asymmetric unmatchables, so Hungarian with --dummies pads.
"$ENTMATCHER" generate --preset DBP+ --scale 0.02 --out "$SMOKE/plus" >/dev/null
"$ENTMATCHER" encode --data "$SMOKE/plus" --encoder name --out "$SMOKE/plus-emb" >/dev/null
"$ENTMATCHER" match --data "$SMOKE/plus" --embeddings "$SMOKE/plus-emb" \
    --algorithm hungarian --dummies --trace "$SMOKE/trace-pad.json" \
    --out "$SMOKE/pairs-pad.tsv" >/dev/null
"$ENTMATCHER" trace --file "$SMOKE/trace-pad.json" | grep -q "pad" || {
    echo "verify: pad span missing from padded trace" >&2
    exit 1
}
echo "verify: telemetry smoke test passed"

# Kernel-bench smoke: run the kernels benchmark at its smallest size and
# check the JSON artifact self-check passes and a blocked-kernel entry is
# *recorded* (throughput comparison is informational here, not asserted —
# CI machines are too noisy for a hard perf gate; BENCH_kernels.json in
# the repo root is the canonical measured artifact).
KERNELS_OUT="$SMOKE/BENCH_kernels.json"
KERNELS_LOG=$(ENTMATCHER_KERNEL_BENCH_OUT="$KERNELS_OUT" \
    cargo bench --offline -p entmatcher-bench --bench kernels 2>&1) || {
    echo "verify: kernels bench failed" >&2
    echo "$KERNELS_LOG" >&2
    exit 1
}
echo "$KERNELS_LOG" | grep -q "self-check ok" || {
    echo "verify: kernels bench self-check marker missing" >&2
    exit 1
}
grep -q '"kernel": "blocked"' "$KERNELS_OUT" || {
    echo "verify: no blocked-kernel entry in $KERNELS_OUT" >&2
    exit 1
}
echo "verify: kernel bench smoke passed"
