//! Property-based and shape-grid tests of the quantized storage layer.
//!
//! Two contracts are pinned here:
//!
//! 1. **Round-trip accuracy.** f16 conversion is exact on every value a
//!    half can represent (it is a widening/narrowing pair, not an
//!    approximation), and otherwise rounds to nearest-even with relative
//!    error <= 2^-11 in the normal range. int8 quantization keeps every
//!    finite element within `scale / 2` of its original (round-to-nearest
//!    at step `scale`), with the documented edge-row conventions: all-zero
//!    rows quantize to all zeros, NaN elements to 0, +/-inf saturate.
//! 2. **Kernel identity.** The dequantize-fused AVX2 micro-kernels are
//!    bitwise identical to their scalar references on a shape grid
//!    straddling every register-block and strip remainder — the same
//!    discipline `simd_equivalence.rs` pins for the f32 kernel.

use entmatcher_linalg::gemm::matmul_blocked_packed_with;
use entmatcher_linalg::ops::matmul_naive;
use entmatcher_linalg::quant::{
    dequantize_value_int8, f16_bits_to_f32, f32_to_f16_bits, int8_row_scale, quantize_value_int8,
};
use entmatcher_linalg::{
    quantize_roundtrip, Matrix, Precision, QuantPackedB, QuantizedMatrix, SimdLevel,
};
use entmatcher_support::prop::{check, Config, Gen};
use entmatcher_support::rng::Rng;
use entmatcher_support::{prop_assert, prop_assert_eq};

fn cfg() -> Config {
    Config::with_cases(128)
}

// ---------------------------------------------------------------------------
// f16 round-trips
// ---------------------------------------------------------------------------

#[test]
fn f16_representable_values_round_trip_exactly() {
    // Exhaustive over all 2^16 bit patterns: every non-NaN half value,
    // widened to f32 and narrowed back, must reproduce its bits exactly
    // (subnormals and both infinities included).
    for bits in 0..=u16::MAX {
        let v = f16_bits_to_f32(bits);
        if v.is_nan() {
            assert!(f16_bits_to_f32(f32_to_f16_bits(v)).is_nan());
            continue;
        }
        assert_eq!(
            f32_to_f16_bits(v),
            bits,
            "half bits {bits:#06x} (= {v}) did not survive the round trip"
        );
    }
}

#[test]
fn f16_narrowing_is_within_half_ulp_on_normal_range() {
    check("f16_narrowing_is_within_half_ulp", cfg(), |g| {
        // Normal half range, away from the subnormal boundary.
        let mag = g.gen_range(6.2e-5f32..60000.0);
        let v = if g.gen::<bool>() { mag } else { -mag };
        let rt = f16_bits_to_f32(f32_to_f16_bits(v));
        // RNE at 10 mantissa bits: relative error <= 2^-11.
        prop_assert!(
            (rt - v).abs() <= v.abs() * (1.0 / 2048.0),
            "f16 round trip of {} drifted to {}",
            v,
            rt
        );
        Ok(())
    });
}

#[test]
fn f16_handles_non_finite_and_overflow() {
    assert_eq!(f16_bits_to_f32(f32_to_f16_bits(f32::INFINITY)), f32::INFINITY);
    assert_eq!(
        f16_bits_to_f32(f32_to_f16_bits(f32::NEG_INFINITY)),
        f32::NEG_INFINITY
    );
    assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    // Values past the half range overflow to infinity (65504 is the max
    // finite half; 65520 is the RNE tie that rolls over).
    assert_eq!(f16_bits_to_f32(f32_to_f16_bits(65520.0)), f32::INFINITY);
    assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1.0e9)), f32::NEG_INFINITY);
    // Values below the smallest subnormal flush to (signed) zero.
    let tiny = f16_bits_to_f32(f32_to_f16_bits(1.0e-9));
    assert_eq!(tiny, 0.0);
}

// ---------------------------------------------------------------------------
// int8 round-trips
// ---------------------------------------------------------------------------

fn gen_row(g: &mut Gen, len: usize) -> Vec<f32> {
    (0..len)
        .map(|_| {
            let v = g.gen_range(-100.0f32..100.0);
            // Sprinkle magnitude spread so rows have non-trivial scales.
            if g.gen_range(0..5u8) == 0 {
                v / 1024.0
            } else {
                v
            }
        })
        .collect()
}

#[test]
fn int8_row_error_is_bounded_by_half_scale() {
    check("int8_row_error_is_bounded_by_half_scale", cfg(), |g| {
        let len = 1 + g.len_in(0, 63);
        let row = gen_row(g, len);
        let scale = int8_row_scale(&row);
        prop_assert!(scale >= 0.0);
        for &v in &row {
            let rt = dequantize_value_int8(quantize_value_int8(v, scale), scale);
            // Round-to-nearest at step `scale`; the tiny epsilon covers
            // the scale division's own rounding.
            prop_assert!(
                (rt - v).abs() <= scale * 0.500_05,
                "|{} - {}| > scale/2 (scale {})",
                rt,
                v,
                scale
            );
        }
        Ok(())
    });
}

#[test]
fn int8_matrix_round_trip_error_is_bounded_per_row() {
    check("int8_matrix_round_trip_error", cfg(), |g| {
        let rows = 1 + g.len_in(0, 11);
        let cols = 1 + g.len_in(0, 19);
        let data: Vec<f32> = (0..rows * cols).flat_map(|_| gen_row(g, 1)).collect();
        let m = Matrix::from_vec(rows, cols, data).expect("sized");
        let rt = quantize_roundtrip(&m, Precision::Int8);
        for r in 0..rows {
            let scale = int8_row_scale(m.row(r));
            for (a, b) in m.row(r).iter().zip(rt.row(r)) {
                prop_assert!((a - b).abs() <= scale * 0.500_05);
            }
        }
        Ok(())
    });
}

#[test]
fn int8_edge_rows_follow_the_documented_conventions() {
    // All-zero row: scale 0, every element round-trips to exactly 0.
    let zero = vec![0.0f32; 16];
    assert_eq!(int8_row_scale(&zero), 0.0);
    for &v in &zero {
        let q = quantize_value_int8(v, 0.0);
        assert_eq!(q, 0);
        assert_eq!(dequantize_value_int8(q, 0.0), 0.0);
    }

    // Single-element row: the element maps to +/-127 exactly.
    for v in [3.5f32, -0.001, 1.0e30] {
        let scale = int8_row_scale(&[v]);
        let q = quantize_value_int8(v, scale);
        assert_eq!(q.abs(), 127, "single element {v} must saturate the grid");
        let rt = dequantize_value_int8(q, scale);
        assert!((rt - v).abs() <= v.abs() * 1e-6);
    }

    // Subnormal row: scales stay finite and positive, elements survive.
    let sub = vec![f32::MIN_POSITIVE / 2.0, -f32::MIN_POSITIVE / 4.0];
    let scale = int8_row_scale(&sub);
    assert!(scale > 0.0 && scale.is_finite());
    for &v in &sub {
        let rt = dequantize_value_int8(quantize_value_int8(v, scale), scale);
        assert!((rt - v).abs() <= scale * 0.500_05);
    }

    // Non-finite elements: NaN -> 0, +/-inf saturate to +/-127; the scale
    // comes from the finite elements only.
    let dirty = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 2.0, -1.0];
    let scale = int8_row_scale(&dirty);
    assert!((scale - 2.0 / 127.0).abs() < 1e-9);
    assert_eq!(quantize_value_int8(f32::NAN, scale), 0);
    assert_eq!(quantize_value_int8(f32::INFINITY, scale), 127);
    assert_eq!(quantize_value_int8(f32::NEG_INFINITY, scale), -127);
}

#[test]
fn quantized_matrix_dequantize_matches_value_level_round_trip() {
    check("quantized_matrix_dequantize_matches", cfg(), |g| {
        let rows = 1 + g.len_in(0, 9);
        let cols = 1 + g.len_in(0, 17);
        let m = Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|_| g.gen_range(-50.0f32..50.0))
                .collect(),
        )
        .expect("sized");
        for precision in [Precision::F16, Precision::Int8] {
            let q = QuantizedMatrix::quantize(&m, precision);
            let full = q.dequantize();
            let mut row = vec![0.0f32; cols];
            for r in 0..rows {
                q.dequantize_row_into(r, &mut row);
                prop_assert_eq!(&row[..], full.row(r));
            }
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// Dequantize-fused kernel identity: scalar vs AVX2 on the shape grid
// ---------------------------------------------------------------------------

/// Deterministic awkward values (mirrors `simd_equivalence.rs`): mixed
/// signs and magnitudes so accumulation-order changes would move bits.
fn lumpy_matrix(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let h = r
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(c.wrapping_mul(0x85eb_ca6b))
            .wrapping_add(salt.wrapping_mul(0xc2b2_ae35));
        let v = ((h >> 7) % 2003) as f32 / 211.0 - 4.5;
        if h % 5 == 0 {
            v * 1024.0
        } else if h % 7 == 0 {
            v / 4096.0
        } else {
            v
        }
    })
}

const MS: [usize; 7] = [1, 3, 4, 5, 8, 13, 33];
const NS: [usize; 7] = [1, 2, 7, 8, 9, 21, 40];
const DS: [usize; 3] = [1, 7, 128];

#[test]
fn dequantize_fused_avx2_is_bitwise_equal_to_scalar_on_shape_grid() {
    for precision in [Precision::F16, Precision::Int8] {
        for (shape_salt, &m) in MS.iter().enumerate() {
            for &n in &NS {
                for &d in &DS {
                    let a = lumpy_matrix(m, d, shape_salt);
                    let b = lumpy_matrix(n, d, shape_salt + 101);
                    let packed = QuantPackedB::pack(&b, precision);
                    let scalar =
                        matmul_blocked_packed_with(&a, &packed, SimdLevel::Scalar).unwrap();
                    let vector = matmul_blocked_packed_with(&a, &packed, SimdLevel::Avx2).unwrap();
                    assert_eq!(
                        vector,
                        scalar,
                        "{} fused simd != scalar at m={m} n={n} d={d}",
                        precision.name()
                    );
                    // And both equal the plain product of the round-tripped
                    // operand — quantization error lives entirely in the
                    // stored values, never in the kernel.
                    let reference = matmul_naive(&a, &quantize_roundtrip(&b, precision)).unwrap();
                    assert_eq!(
                        scalar,
                        reference,
                        "{} fused != naive-on-roundtrip at m={m} n={n} d={d}",
                        precision.name()
                    );
                }
            }
        }
    }
}

#[test]
fn dequantize_fused_fma_request_maps_to_avx2() {
    // FMA is an f32-only opt-in; quantized kernels clamp it to the AVX2
    // (bitwise-exact) path, so requesting it must not change any bit.
    let a = lumpy_matrix(13, 64, 3);
    let b = lumpy_matrix(21, 64, 9);
    for precision in [Precision::F16, Precision::Int8] {
        let packed = QuantPackedB::pack(&b, precision);
        let scalar = matmul_blocked_packed_with(&a, &packed, SimdLevel::Scalar).unwrap();
        let fma = matmul_blocked_packed_with(&a, &packed, SimdLevel::Fma).unwrap();
        assert_eq!(fma, scalar, "{} fma-request diverged", precision.name());
    }
}
