//! Cache-blocked `A * B^T` kernel with operand packing and register tiling.
//!
//! The naive kernel in [`crate::ops`] computes each output element as an
//! independent sequential dot product. That formulation has two costs at
//! scale: the reduction over `d` is a serial FP dependency chain (no SIMD —
//! f32 addition is not associative, so LLVM cannot reassociate it), and the
//! whole `B` operand is streamed from memory once per `A` row.
//!
//! This module restructures the computation the BLIS way:
//!
//! * **Packing** — `B` is repacked once into [`PackedB`]: strips of
//!   [`NR`] consecutive `B` rows, transposed so that for each depth index
//!   `d` the `NR` values `B[j..j+NR][d]` are contiguous. One packed load
//!   feeds `NR` output columns.
//! * **Register tiling** — the micro-kernel keeps an `MR x NR` accumulator
//!   block in registers and walks the full depth once per tile. SIMD runs
//!   *across the `NR` output columns*, never across `d`: each accumulator
//!   lane sums its column strictly in `d` order, so every output element is
//!   **bit-identical** to the naive sequential `dot` of the same rows. The
//!   fused kernels in [`crate::fused`] and the dense path therefore agree
//!   exactly, whatever the tile geometry.
//! * **Cache blocking** — panels of [`PANEL_BYTES`] worth of packed strips
//!   stay resident in L2 while every row block of the worker's chunk is
//!   streamed against them, so `B` traffic drops from `m` passes to
//!   `m / chunk_rows` passes.
//!
//! Telemetry (when enabled): `gemm.tiles` (micro-kernel invocations),
//! `gemm.packed_bytes` (bytes packed), `gemm.panels` (L2 panel passes).

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::parallel::{par_row_chunks_mut_grained, Grain};
use crate::simd::SimdLevel;
use crate::Result;
use entmatcher_support::telemetry;

/// Rows of `A` per register tile.
pub const MR: usize = 4;

/// Rows of `B` (output columns) per packed strip / register tile. Eight
/// f32 lanes map onto one 256-bit vector register.
pub const NR: usize = 8;

/// Target bytes of packed `B` kept hot per cache panel (~half a typical
/// 512 KiB L2, leaving room for the `A` row block and the output tile).
pub const PANEL_BYTES: usize = 256 * 1024;

/// A packed right operand the blocked/fused kernels can tile against,
/// whatever its storage precision. [`PackedB`] is the f32 reference;
/// [`crate::quant::QuantPackedB`] stores f16/int8 strips and dequantizes
/// inside the register block; [`crate::quant::PackedAny`] dispatches
/// between them. The strip geometry ([`NR`] rows per strip, zero-padded
/// tails) is shared by every implementation — only the element width and
/// micro-kernel differ.
pub trait PackedOperand: Sync {
    /// Valid (unpadded) row count of the packed operand.
    fn n(&self) -> usize;

    /// Shared depth (columns of `A` and the packed `B`).
    fn d(&self) -> usize;

    /// Number of [`NR`]-row strips (including the zero-padded tail strip).
    fn strips(&self) -> usize {
        self.n().div_ceil(NR)
    }

    /// Heap bytes held by the packed payload.
    fn packed_bytes(&self) -> usize;

    /// Strips per L2 cache panel — implementations size this by their
    /// *element width*, so narrower payloads keep more strips hot.
    fn panel_strips(&self) -> usize;

    /// Computes the tile `A[row0..row0+rows] x strips[s0..s1]` into `out`
    /// (row-major, stride `out_stride`, column 0 = output column
    /// `col_base`; tail lanes past [`PackedOperand::n`] trimmed) at the
    /// requested micro-kernel level. Returns micro-kernel invocations.
    #[allow(clippy::too_many_arguments)]
    fn block_into(
        &self,
        a: &Matrix,
        row0: usize,
        rows: usize,
        s0: usize,
        s1: usize,
        out: &mut [f32],
        out_stride: usize,
        col_base: usize,
        level: SimdLevel,
    ) -> u64;
}

/// `B` repacked into transposed strips of [`NR`] rows.
///
/// Strip `s` covers `B` rows `s*NR .. s*NR+NR` (zero-padded past `n`) and
/// stores, for each depth index `d`, the `NR` row values contiguously:
/// `data[s*d_len*NR + d*NR + l] = B[s*NR + l][d]`.
#[derive(Debug, Clone)]
pub struct PackedB {
    data: Vec<f32>,
    /// Valid (unpadded) row count of the original `B`.
    n: usize,
    /// Shared depth (columns of `A` and `B`).
    d: usize,
}

impl PackedB {
    /// Packs `b` (an `n x d` row-major matrix) into strip-transposed layout.
    pub fn pack(b: &Matrix) -> PackedB {
        let (n, d) = b.shape();
        let strips = n.div_ceil(NR);
        let mut data = vec![0.0f32; strips * d * NR];
        for s in 0..strips {
            let strip = &mut data[s * d * NR..(s + 1) * d * NR];
            let valid = NR.min(n - s * NR);
            for l in 0..valid {
                let row = b.row(s * NR + l);
                for (dd, &v) in row.iter().enumerate() {
                    strip[dd * NR + l] = v;
                }
            }
        }
        telemetry::add("gemm.packed_bytes", (data.len() * 4) as u64);
        PackedB { data, n, d }
    }

    /// Wraps an already-strip-packed buffer (the chunked builder path in
    /// [`crate::quant::PackedBuilder`]). `data.len()` must equal
    /// `n.div_ceil(NR) * d * NR`.
    pub(crate) fn from_raw(data: Vec<f32>, n: usize, d: usize) -> PackedB {
        debug_assert_eq!(data.len(), n.div_ceil(NR) * d * NR);
        PackedB { data, n, d }
    }

    /// Number of [`NR`]-row strips (including the zero-padded tail strip).
    #[inline]
    pub fn strips(&self) -> usize {
        self.n.div_ceil(NR)
    }

    /// Valid row count of the packed operand.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Shared depth of the packed operand.
    #[inline]
    pub fn d(&self) -> usize {
        self.d
    }

    /// Heap bytes held by the packed buffer.
    #[inline]
    pub fn packed_bytes(&self) -> usize {
        self.data.len() * 4
    }

    /// The packed strip `s` (`d * NR` floats).
    #[inline]
    fn strip(&self, s: usize) -> &[f32] {
        &self.data[s * self.d * NR..(s + 1) * self.d * NR]
    }

    /// Strips per L2 cache panel for this operand's depth.
    #[inline]
    pub fn panel_strips(&self) -> usize {
        let strip_bytes = (self.d * NR * 4).max(1);
        (PANEL_BYTES / strip_bytes).max(1)
    }
}

impl PackedOperand for PackedB {
    fn n(&self) -> usize {
        self.n
    }

    fn d(&self) -> usize {
        self.d
    }

    fn packed_bytes(&self) -> usize {
        PackedB::packed_bytes(self)
    }

    fn panel_strips(&self) -> usize {
        PackedB::panel_strips(self)
    }

    fn block_into(
        &self,
        a: &Matrix,
        row0: usize,
        rows: usize,
        s0: usize,
        s1: usize,
        out: &mut [f32],
        out_stride: usize,
        col_base: usize,
        level: SimdLevel,
    ) -> u64 {
        block_into(a, row0, rows, self, s0, s1, out, out_stride, col_base, level)
    }
}

/// The register-tiled micro-kernel: `MRV` rows of `A` against one packed
/// strip. `MRV` is a const generic so each arity compiles to a fixed
/// register block; the accumulator lane `acc[i][l]` walks depth `d` in
/// strict sequential order (bitwise equal to the naive `dot`), while the
/// compiler vectorizes across the `NR` lanes.
#[inline]
fn micro_kernel<const MRV: usize>(a_rows: [&[f32]; MRV], strip: &[f32]) -> [[f32; NR]; MRV] {
    let mut acc = [[0.0f32; NR]; MRV];
    for (dd, b8) in strip.chunks_exact(NR).enumerate() {
        for i in 0..MRV {
            let av = a_rows[i][dd];
            for l in 0..NR {
                acc[i][l] += av * b8[l];
            }
        }
    }
    acc
}

/// Computes the tile `A[rows] x strips[s0..s1]` and stores it into `out`,
/// a row-major buffer of stride `out_stride` whose column 0 corresponds to
/// output column `col_base`. Columns past `packed.n()` (the zero-padded
/// tail lanes) are trimmed. Returns the number of micro-kernel calls.
///
/// Dispatches on `level`: the scalar path runs the [`MR`]x[`NR`] reference
/// micro-kernel; the vector paths run the wider
/// [`crate::simd::MR_SIMD`]-row AVX2 kernels. All levels except
/// [`SimdLevel::Fma`] produce bitwise-identical output.
fn block_into(
    a: &Matrix,
    row0: usize,
    rows: usize,
    packed: &PackedB,
    s0: usize,
    s1: usize,
    out: &mut [f32],
    out_stride: usize,
    col_base: usize,
    level: SimdLevel,
) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if level != SimdLevel::Scalar {
        return block_into_simd(
            a,
            row0,
            rows,
            packed,
            s0,
            s1,
            out,
            out_stride,
            col_base,
            level == SimdLevel::Fma,
        );
    }
    let _ = level;
    let mut tiles = 0u64;
    let mut r = 0usize;
    while r < rows {
        let mr = MR.min(rows - r);
        for s in s0..s1 {
            let strip = packed.strip(s);
            let col = s * NR;
            let valid = NR.min(packed.n() - col);
            let acc: [[f32; NR]; MR] = match mr {
                4 => micro_kernel::<4>(
                    [
                        a.row(row0 + r),
                        a.row(row0 + r + 1),
                        a.row(row0 + r + 2),
                        a.row(row0 + r + 3),
                    ],
                    strip,
                ),
                3 => {
                    let t = micro_kernel::<3>(
                        [a.row(row0 + r), a.row(row0 + r + 1), a.row(row0 + r + 2)],
                        strip,
                    );
                    [t[0], t[1], t[2], [0.0; NR]]
                }
                2 => {
                    let t = micro_kernel::<2>([a.row(row0 + r), a.row(row0 + r + 1)], strip);
                    [t[0], t[1], [0.0; NR], [0.0; NR]]
                }
                _ => {
                    let t = micro_kernel::<1>([a.row(row0 + r)], strip);
                    [t[0], [0.0; NR], [0.0; NR], [0.0; NR]]
                }
            };
            for i in 0..mr {
                let dst_start = (r + i) * out_stride + (col - col_base);
                out[dst_start..dst_start + valid].copy_from_slice(&acc[i][..valid]);
            }
            tiles += 1;
        }
        r += mr;
    }
    tiles
}

/// The vector tile loop: [`crate::simd::MR_SIMD`]-row register blocks
/// against packed strips. Remainder row groups (`mr < MR_SIMD`) clamp the
/// trailing row pointers to the last valid row — the kernel computes a few
/// duplicate rows whose results are simply not stored, which keeps the
/// micro-kernel a single fixed-arity hot loop.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn block_into_simd(
    a: &Matrix,
    row0: usize,
    rows: usize,
    packed: &PackedB,
    s0: usize,
    s1: usize,
    out: &mut [f32],
    out_stride: usize,
    col_base: usize,
    fma: bool,
) -> u64 {
    use crate::simd::MR_SIMD;
    let mut tiles = 0u64;
    let mut r = 0usize;
    while r < rows {
        let mr = MR_SIMD.min(rows - r);
        let a_rows: [&[f32]; MR_SIMD] =
            std::array::from_fn(|i| a.row(row0 + r + i.min(mr - 1)));
        for s in s0..s1 {
            let strip = packed.strip(s);
            let col = s * NR;
            let valid = NR.min(packed.n() - col);
            let mut acc = [[0.0f32; NR]; MR_SIMD];
            // Safety: dispatch guarantees the required CPU features
            // (`block_into` only routes here for Avx2/Fma levels), and
            // every `a_rows[i]` has exactly `d = strip.len() / NR`
            // elements.
            unsafe {
                if fma {
                    crate::simd::micro_fma(&a_rows, strip, &mut acc);
                } else {
                    crate::simd::micro_avx2(&a_rows, strip, &mut acc);
                }
            }
            for i in 0..mr {
                let dst_start = (r + i) * out_stride + (col - col_base);
                out[dst_start..dst_start + valid].copy_from_slice(&acc[i][..valid]);
            }
            tiles += 1;
        }
        r += mr;
    }
    tiles
}

/// Blocked `A * B^T` against a pre-packed right operand (any
/// [`PackedOperand`] precision), using the process-wide SIMD dispatch
/// decision ([`crate::simd::active`]).
pub fn matmul_blocked_packed<P: PackedOperand + ?Sized>(
    a: &Matrix,
    packed: &P,
) -> Result<Matrix> {
    matmul_blocked_packed_with(a, packed, crate::simd::active())
}

/// Blocked `A * B^T` against a pre-packed right operand with an explicit
/// micro-kernel level — the entry point for scalar-vs-SIMD equivalence
/// tests and benchmarks. The output chunk rows are parallelized on the
/// persistent pool; within each task the packed panels loop outermost so
/// each panel is read from L2, not memory.
pub fn matmul_blocked_packed_with<P: PackedOperand + ?Sized>(
    a: &Matrix,
    packed: &P,
    level: SimdLevel,
) -> Result<Matrix> {
    let level = crate::simd::clamp_supported(level);
    if a.cols() != packed.d() {
        return Err(LinalgError::DimMismatch {
            op: "matmul_blocked",
            left: a.shape(),
            right: (packed.n(), packed.d()),
        });
    }
    let (m, n) = (a.rows(), packed.n());
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let panel = packed.panel_strips();
    let strips = packed.strips();
    let tiles = std::sync::atomic::AtomicU64::new(0);
    let panels = std::sync::atomic::AtomicU64::new(0);
    // One output row costs n * d flops; never split tasks below the
    // register-block height so every task runs full-width tiles.
    let grain = Grain::for_item_cost(n.saturating_mul(packed.d().max(1)))
        .at_least(crate::simd::MR_SIMD);
    par_row_chunks_mut_grained(out.as_mut_slice(), n, grain, |start_row, chunk| {
        let rows = chunk.len() / n;
        let mut local_tiles = 0u64;
        let mut local_panels = 0u64;
        let mut s0 = 0usize;
        while s0 < strips {
            let s1 = (s0 + panel).min(strips);
            local_tiles += packed.block_into(a, start_row, rows, s0, s1, chunk, n, 0, level);
            local_panels += 1;
            s0 = s1;
        }
        tiles.fetch_add(local_tiles, std::sync::atomic::Ordering::Relaxed);
        panels.fetch_add(local_panels, std::sync::atomic::Ordering::Relaxed);
    });
    telemetry::add("gemm.tiles", tiles.into_inner());
    telemetry::add("gemm.panels", panels.into_inner());
    Ok(out)
}

/// Blocked `A * B^T`: packs `B` and multiplies. Drop-in replacement for the
/// naive kernel — see the module docs for why results are bit-identical.
pub fn matmul_blocked(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    matmul_blocked_with(a, b, crate::simd::active())
}

/// [`matmul_blocked`] with an explicit micro-kernel level (see
/// [`matmul_blocked_packed_with`]).
pub fn matmul_blocked_with(a: &Matrix, b: &Matrix, level: SimdLevel) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(LinalgError::DimMismatch {
            op: "matmul_blocked",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let packed = PackedB::pack(b);
    matmul_blocked_packed_with(a, &packed, level)
}

/// Computes the scores tile `A[row0..row0+rows] x strips[s0..s1]` into the
/// caller's scratch buffer (`rows x (s1-s0)*NR` row-major, tail columns
/// trimmed to `packed.n()`); used by the fused streaming kernels, which
/// reduce the tile immediately instead of materializing the full matrix.
/// Returns the valid (trimmed) tile width.
pub(crate) fn tile_into<P: PackedOperand + ?Sized>(
    a: &Matrix,
    row0: usize,
    rows: usize,
    packed: &P,
    s0: usize,
    s1: usize,
    scratch: &mut [f32],
) -> (usize, u64) {
    let col_base = s0 * NR;
    let width = (packed.n().min(s1 * NR)) - col_base;
    let stride = (s1 - s0) * NR;
    debug_assert!(scratch.len() >= rows * stride);
    let tiles = packed.block_into(
        a,
        row0,
        rows,
        s0,
        s1,
        scratch,
        stride,
        col_base,
        crate::simd::clamp_supported(crate::simd::active()),
    );
    (width, tiles)
}

/// Width of the scratch buffer rows handed to [`tile_into`] for a strip
/// range of `count` strips.
pub(crate) fn tile_stride(count: usize) -> usize {
    count * NR
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{dot, matmul_naive};

    fn seq_matrix(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            (((r * 31 + c * 17 + salt * 7) % 23) as f32 - 11.0) * 0.25
        })
    }

    #[test]
    fn packed_layout_transposes_strips() {
        let b = seq_matrix(10, 3, 1);
        let p = PackedB::pack(&b);
        assert_eq!(p.strips(), 2);
        assert_eq!(p.n(), 10);
        // Element (row j, depth d) lives at strip j/NR, offset d*NR + j%NR.
        for j in 0..10 {
            for dd in 0..3 {
                let s = j / NR;
                assert_eq!(p.strip(s)[dd * NR + j % NR], b.get(j, dd));
            }
        }
        // Padded tail lanes are zero.
        for dd in 0..3 {
            for l in 2..NR {
                assert_eq!(p.strip(1)[dd * NR + l], 0.0);
            }
        }
    }

    #[test]
    fn blocked_is_bitwise_equal_to_naive() {
        // Sequential d-order accumulation makes the blocked kernel exactly
        // reproduce the naive dot, not just approximately.
        let a = seq_matrix(13, 19, 0);
        let b = seq_matrix(21, 19, 5);
        let blocked = matmul_blocked(&a, &b).unwrap();
        let naive = matmul_naive(&a, &b).unwrap();
        assert_eq!(blocked, naive);
        for i in [0usize, 12] {
            for j in [0usize, 7, 20] {
                assert_eq!(blocked.get(i, j), dot(a.row(i), b.row(j)));
            }
        }
    }

    #[test]
    fn blocked_checks_inner_dim() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        assert!(matmul_blocked(&a, &b).is_err());
    }

    #[test]
    fn empty_shapes_yield_empty_outputs() {
        for (m, n, d) in [(0usize, 5usize, 3usize), (5, 0, 3), (5, 5, 0), (0, 0, 0)] {
            let a = Matrix::zeros(m, d);
            let b = Matrix::zeros(n, d);
            let out = matmul_blocked(&a, &b).unwrap();
            assert_eq!(out.shape(), (m, n));
            assert!(out.as_slice().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn tile_into_matches_full_product() {
        let a = seq_matrix(9, 11, 2);
        let b = seq_matrix(20, 11, 3);
        let packed = PackedB::pack(&b);
        let full = matmul_blocked_packed(&a, &packed).unwrap();
        // Tile covering strips 1..3 => columns 8..20 (trimmed at n = 20).
        let stride = tile_stride(2);
        let mut scratch = vec![0.0f32; 4 * stride];
        let (width, _) = tile_into(&a, 3, 4, &packed, 1, 3, &mut scratch);
        assert_eq!(width, 12);
        for r in 0..4 {
            for c in 0..width {
                assert_eq!(scratch[r * stride + c], full.get(3 + r, 8 + c));
            }
        }
    }

    #[test]
    fn panel_strips_is_positive_even_for_huge_depth() {
        let b = Matrix::zeros(2, 1_000_000);
        let p = PackedB::pack(&b);
        assert!(p.panel_strips() >= 1);
    }
}
