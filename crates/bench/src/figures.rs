//! One function per figure of the paper, plus the §4.3 DL-EM baseline and
//! the Appendix C k-sweep.

use crate::tables::Report;
use crate::{Config, Workbench};
use entmatcher_core::{
    Csls, Greedy, MatchContext, MatchPipeline, Matcher, NoOp, ScoreOptimizer, SimilarityMetric,
    Sinkhorn,
};
use entmatcher_data::benchmarks;
use entmatcher_eval::report::{fmt3, fmt_gb, fmt_secs, TableBuilder};
use entmatcher_eval::{evaluate_links, EncoderKind, MatchTask};
use entmatcher_linalg::Matrix;
use entmatcher_support::json;
use entmatcher_support::json::Json;

fn report(id: &str, tables: &[TableBuilder], json: Json) -> Report {
    Report {
        id: id.to_owned(),
        text: tables
            .iter()
            .map(|t| t.render())
            .collect::<Vec<_>>()
            .join("\n"),
        markdown: tables
            .iter()
            .map(|t| t.render_markdown())
            .collect::<Vec<_>>()
            .join("\n"),
        json,
    }
}

/// Computes the candidate-space cosine similarity matrix for one setting.
fn candidate_scores(
    wb: &mut Workbench,
    spec: &entmatcher_data::PairSpec,
    kind: EncoderKind,
) -> (MatchTask, Matrix, Matrix) {
    let (pair, emb) = wb.embeddings(spec, kind);
    let task = MatchTask::from_pair(pair);
    let (s, t) = task.candidate_embeddings(emb);
    (task, s, t)
}

/// Figure 4 — average standard deviation of each source entity's top-5
/// pairwise scores, per evaluation setting.
pub fn fig4(cfg: &Config, wb: &mut Workbench) -> Report {
    let mut t = TableBuilder::new(
        "Figure 4: average STD of top-5 pairwise similarity scores",
        &["Setting", "avg STD", "avg top-1 margin"],
    );
    let mut rows_json = Vec::new();
    let settings: Vec<(String, entmatcher_data::PairSpec, EncoderKind)> = vec![
        (
            "R-DBP(D-Z)".into(),
            benchmarks::dbp15k("D-Z", cfg.scale),
            EncoderKind::Rrea,
        ),
        (
            "G-DBP(D-Z)".into(),
            benchmarks::dbp15k("D-Z", cfg.scale),
            EncoderKind::Gcn,
        ),
        (
            "R-SRP(S-F)".into(),
            benchmarks::srprs("S-F", cfg.scale),
            EncoderKind::Rrea,
        ),
        (
            "G-SRP(S-F)".into(),
            benchmarks::srprs("S-F", cfg.scale),
            EncoderKind::Gcn,
        ),
        (
            "N-DBP(D-Z)".into(),
            benchmarks::dbp15k("D-Z", cfg.scale),
            EncoderKind::Name,
        ),
        (
            "NR-DBP(D-Z)".into(),
            benchmarks::dbp15k("D-Z", cfg.scale),
            EncoderKind::name_rrea_default(),
        ),
    ];
    for (name, spec, kind) in settings {
        let (_task, s, tt) = candidate_scores(wb, &spec, kind);
        let scores = entmatcher_core::similarity_matrix(&s, &tt, SimilarityMetric::Cosine);
        let std = entmatcher_eval::patterns::avg_top_k_std(&scores, 5);
        let margin = entmatcher_eval::patterns::avg_top1_margin(&scores);
        t.row(vec![
            name.clone(),
            format!("{std:.4}"),
            format!("{margin:.4}"),
        ]);
        rows_json.push(json!({ "setting": name, "top5_std": std, "top1_margin": margin }));
    }
    report("fig4", &[t], json!({ "rows": rows_json }))
}

/// Figure 5 — time and memory comparison of the seven algorithms on the
/// medium-sized settings.
pub fn fig5(cfg: &Config, wb: &mut Workbench) -> Report {
    let settings: Vec<(String, entmatcher_data::PairSpec, EncoderKind)> = vec![
        (
            "R-DBP(D-Z)".into(),
            benchmarks::dbp15k("D-Z", cfg.scale),
            EncoderKind::Rrea,
        ),
        (
            "G-DBP(D-Z)".into(),
            benchmarks::dbp15k("D-Z", cfg.scale),
            EncoderKind::Gcn,
        ),
        (
            "R-SRP(S-F)".into(),
            benchmarks::srprs("S-F", cfg.scale),
            EncoderKind::Rrea,
        ),
        (
            "N-DBP(D-Z)".into(),
            benchmarks::dbp15k("D-Z", cfg.scale),
            EncoderKind::Name,
        ),
    ];
    let presets = entmatcher_core::AlgorithmPreset::main_seven();
    let mut time_t = TableBuilder::new(
        "Figure 5a: time cost (seconds)",
        &["Algo", "R-DBP", "G-DBP", "R-SRP", "N-DBP"],
    );
    let mut mem_t = TableBuilder::new(
        "Figure 5b: peak auxiliary memory (GB)",
        &["Algo", "R-DBP", "G-DBP", "R-SRP", "N-DBP"],
    );
    let grid = entmatcher_eval::ExperimentGrid {
        workers: 2,
        pad_dummies: false,
        // Scalability sweeps take minutes; keep the console alive.
        progress: Some(std::time::Duration::from_secs(5)),
    };
    let mut per_setting = Vec::new();
    for (name, spec, kind) in &settings {
        let (pair, emb) = wb.embeddings(spec, *kind);
        let cells = grid.run_with_embeddings(pair, kind.prefix(), emb, &presets);
        per_setting.push((name.clone(), cells));
    }
    let mut rows_json = Vec::new();
    for (a, preset) in presets.iter().enumerate() {
        let times: Vec<String> = per_setting
            .iter()
            .map(|(_, cells)| fmt_secs(cells[a].elapsed))
            .collect();
        let mems: Vec<String> = per_setting
            .iter()
            .map(|(_, cells)| fmt_gb(cells[a].peak_aux_bytes))
            .collect();
        let mut trow = vec![preset.name().to_owned()];
        trow.extend(times.clone());
        time_t.row(trow);
        let mut mrow = vec![preset.name().to_owned()];
        mrow.extend(mems.clone());
        mem_t.row(mrow);
        rows_json.push(json!({ "algorithm": preset.name(), "seconds": times, "gb": mems }));
    }

    // Stage breakdown on the R-DBP setting: where each algorithm spends
    // its time (similarity is shared; the optimizer/matcher split is what
    // separates the two algorithm families).
    let mut stage_t = TableBuilder::new(
        "Figure 5c: per-stage time on R-DBP(D-Z) (seconds)",
        &["Algo", "Similarity", "Optimize", "Match"],
    );
    {
        let (name0, spec0, kind0) = &settings[0];
        let _ = name0;
        let (pair, emb) = wb.embeddings(spec0, *kind0);
        let task = entmatcher_eval::MatchTask::from_pair(pair);
        let (src, tgt) = task.candidate_embeddings(emb);
        let ctx = task.context(pair);
        for preset in presets {
            let r = preset.build().execute(&src, &tgt, &ctx);
            stage_t.row(vec![
                preset.name().to_owned(),
                fmt_secs(r.similarity_time),
                fmt_secs(r.optimize_time),
                fmt_secs(r.match_time),
            ]);
        }
    }
    report("fig5", &[time_t, mem_t, stage_t], json!({ "rows": rows_json }))
}

/// Sweeps one score optimizer's hyper-parameter, reporting F1 per value.
fn sweep_f1(
    wb: &mut Workbench,
    spec: &entmatcher_data::PairSpec,
    kind: EncoderKind,
    optimizers: Vec<(String, Box<dyn ScoreOptimizer>)>,
) -> Vec<(String, f64)> {
    let (pair, emb) = wb.embeddings(spec, kind);
    let task = MatchTask::from_pair(pair);
    let (s, t) = task.candidate_embeddings(emb);
    optimizers
        .into_iter()
        .map(|(label, opt)| {
            let pipeline = MatchPipeline::new(SimilarityMetric::Cosine, opt, Box::new(Greedy));
            let r = pipeline.execute(&s, &t, &MatchContext::default());
            let links = task.matching_to_links(&r.matching);
            (label, evaluate_links(&links, &task.gold).f1)
        })
        .collect()
}

/// Figure 6 — CSLS F1 as a function of k.
pub fn fig6(cfg: &Config, wb: &mut Workbench) -> Report {
    let ks = [1usize, 2, 5, 10, 20, 50];
    let mut t = TableBuilder::new(
        "Figure 6: CSLS F1 vs k",
        &["Setting", "k=1", "k=2", "k=5", "k=10", "k=20", "k=50"],
    );
    let mut rows_json = Vec::new();
    for (name, spec, kind) in [
        (
            "R-DBP(D-Z)",
            benchmarks::dbp15k("D-Z", cfg.scale),
            EncoderKind::Rrea,
        ),
        (
            "G-DBP(D-Z)",
            benchmarks::dbp15k("D-Z", cfg.scale),
            EncoderKind::Gcn,
        ),
        (
            "R-SRP(S-F)",
            benchmarks::srprs("S-F", cfg.scale),
            EncoderKind::Rrea,
        ),
    ] {
        let optimizers: Vec<(String, Box<dyn ScoreOptimizer>)> = ks
            .iter()
            .map(|&k| {
                (
                    format!("k={k}"),
                    Box::new(Csls { k }) as Box<dyn ScoreOptimizer>,
                )
            })
            .collect();
        let curve = sweep_f1(wb, &spec, kind, optimizers);
        let mut row = vec![name.to_owned()];
        row.extend(curve.iter().map(|(_, f1)| fmt3(*f1)));
        t.row(row);
        rows_json.push(json!({
            "setting": name,
            "k": ks,
            "f1": curve.iter().map(|(_, f)| *f).collect::<Vec<_>>(),
        }));
    }
    report("fig6", &[t], json!({ "rows": rows_json }))
}

/// Figure 7 — Sinkhorn F1 as a function of the iteration count l.
pub fn fig7(cfg: &Config, wb: &mut Workbench) -> Report {
    let ls = [1usize, 5, 10, 30, 100, 300];
    let mut t = TableBuilder::new(
        "Figure 7: Sinkhorn F1 vs l",
        &["Setting", "l=1", "l=5", "l=10", "l=30", "l=100", "l=300"],
    );
    let mut rows_json = Vec::new();
    for (name, spec, kind) in [
        (
            "R-DBP(D-Z)",
            benchmarks::dbp15k("D-Z", cfg.scale),
            EncoderKind::Rrea,
        ),
        (
            "G-DBP(D-Z)",
            benchmarks::dbp15k("D-Z", cfg.scale),
            EncoderKind::Gcn,
        ),
    ] {
        let optimizers: Vec<(String, Box<dyn ScoreOptimizer>)> = ls
            .iter()
            .map(|&l| {
                (
                    format!("l={l}"),
                    Box::new(Sinkhorn {
                        iterations: l,
                        ..Default::default()
                    }) as Box<dyn ScoreOptimizer>,
                )
            })
            .collect();
        let curve = sweep_f1(wb, &spec, kind, optimizers);
        let mut row = vec![name.to_owned()];
        row.extend(curve.iter().map(|(_, f1)| fmt3(*f1)));
        t.row(row);
        rows_json.push(json!({
            "setting": name,
            "l": ls,
            "f1": curve.iter().map(|(_, f)| *f).collect::<Vec<_>>(),
        }));
    }
    report("fig7", &[t], json!({ "rows": rows_json }))
}

/// Appendix C — CSLS k under the non-1-to-1 setting, where k = 1 loses its
/// edge (the 1-to-1 assumption behind max-sharpening no longer holds).
pub fn appc(cfg: &Config, wb: &mut Workbench) -> Report {
    let ks = [1usize, 2, 5, 10, 20];
    let mut t = TableBuilder::new(
        "Appendix C: CSLS F1 vs k on FB_DBP_MUL (non 1-to-1)",
        &["Setting", "k=1", "k=2", "k=5", "k=10", "k=20"],
    );
    let spec = benchmarks::fb_dbp_mul(cfg.scale);
    let mut rows_json = Vec::new();
    for (name, kind) in [("GCN", EncoderKind::Gcn), ("RREA", EncoderKind::Rrea)] {
        let optimizers: Vec<(String, Box<dyn ScoreOptimizer>)> = ks
            .iter()
            .map(|&k| {
                (
                    format!("k={k}"),
                    Box::new(Csls { k }) as Box<dyn ScoreOptimizer>,
                )
            })
            .collect();
        let curve = sweep_f1(wb, &spec, kind, optimizers);
        let mut row = vec![name.to_owned()];
        row.extend(curve.iter().map(|(_, f1)| fmt3(*f1)));
        t.row(row);
        rows_json.push(json!({
            "setting": name,
            "k": ks,
            "f1": curve.iter().map(|(_, f)| *f).collect::<Vec<_>>(),
        }));
    }
    report("appc", &[t], json!({ "rows": rows_json }))
}

/// §4.3 — the deepmatcher-style DL-EM baseline: train an MLP pair
/// classifier on seed links, align by classifier argmax, and watch it
/// collapse next to DInf.
pub fn dlem(cfg: &Config, wb: &mut Workbench) -> Report {
    let spec = benchmarks::dbp15k("D-Z", cfg.scale);
    let mut t = TableBuilder::new(
        "DL-based EM baseline on D-Z (paper 4.3)",
        &["Embeddings", "DL-EM F1", "DInf F1"],
    );
    let mut rows_json = Vec::new();
    for (name, kind) in [("GCN", EncoderKind::Gcn), ("Name", EncoderKind::Name)] {
        let (pair, emb) = wb.embeddings(&spec, kind);
        let task = MatchTask::from_pair(pair);
        let model = entmatcher_embed::mlp::train_pair_classifier(
            emb,
            pair.train_links(),
            &entmatcher_embed::mlp::MlpConfig::default(),
        );
        let (s, tt) = task.candidate_embeddings(emb);
        // Classifier argmax per source candidate.
        let assignment: Vec<Option<u32>> = (0..s.rows())
            .map(|i| {
                let mut best = (None, f32::NEG_INFINITY);
                for j in 0..tt.rows() {
                    let p = model.score(s.row(i), tt.row(j));
                    if p > best.1 {
                        best = (Some(j as u32), p);
                    }
                }
                best.0
            })
            .collect();
        let links = task.matching_to_links(&entmatcher_core::Matching::new(assignment));
        let dl_f1 = evaluate_links(&links, &task.gold).f1;
        // DInf on the same embeddings.
        let dinf = MatchPipeline::new(SimilarityMetric::Cosine, Box::new(NoOp), Box::new(Greedy));
        let r = dinf.execute(&s, &tt, &MatchContext::default());
        let dinf_f1 = evaluate_links(&task.matching_to_links(&r.matching), &task.gold).f1;
        t.row(vec![name.into(), fmt3(dl_f1), fmt3(dinf_f1)]);
        rows_json.push(json!({ "embeddings": name, "dl_em_f1": dl_f1, "dinf_f1": dinf_f1 }));
    }
    report("dlem", &[t], json!({ "rows": rows_json }))
}

// Matcher is used through the pipeline; silence the unused-import lint in
// builds without tests.
#[allow(unused)]
fn _assert_traits(m: &dyn Matcher) -> &str {
    m.name()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Config {
        Config {
            scale: 0.02,
            dwy_scale: 0.002,
            ..Default::default()
        }
    }

    #[test]
    fn fig4_produces_positive_stds() {
        let mut wb = Workbench::new();
        let r = fig4(&tiny_cfg(), &mut wb);
        let rows = r.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 6);
        for row in rows {
            assert!(row["top5_std"].as_f64().unwrap() >= 0.0);
        }
    }

    #[test]
    fn fig7_more_iterations_do_not_hurt_much() {
        let mut wb = Workbench::new();
        let r = fig7(&tiny_cfg(), &mut wb);
        let rows = r.json["rows"].as_array().unwrap();
        for row in rows {
            let f1 = row["f1"].as_array().unwrap();
            let first = f1[0].as_f64().unwrap();
            let last = f1[f1.len() - 1].as_f64().unwrap();
            assert!(
                last >= first - 0.05,
                "convergence should not collapse: {first} -> {last}"
            );
        }
    }
}
