//! Plain-text table rendering for the reproduction reports.

/// An ASCII table builder with right-aligned numeric columns, used by the
/// `repro` binary and the `EXPERIMENTS.md` writer.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TableBuilder {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table (for `EXPERIMENTS.md`).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Formats an F1-style fraction with 3 decimals, the paper's convention.
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a byte count as GB with 2 decimals (Figure 5's unit).
pub fn fmt_gb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / 1e9)
}

/// Formats a duration in seconds with 2 decimals.
pub fn fmt_secs(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TableBuilder::new("Demo", &["Algo", "F1"]);
        t.row(vec!["DInf".into(), "0.605".into()]);
        t.row(vec!["Hungarian".into(), "0.749".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("DInf"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn markdown_rendering() {
        let mut t = TableBuilder::new("Table 4", &["A", "B"]);
        t.row(vec!["x".into(), "y".into()]);
        let md = t.render_markdown();
        assert!(md.contains("### Table 4"));
        assert!(md.contains("| x | y |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = TableBuilder::new("Bad", &["A", "B"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt_gb(2_500_000_000), "2.50");
        assert_eq!(fmt_secs(std::time::Duration::from_millis(1234)), "1.23");
    }
}
