//! String interner mapping symbols (entity URIs, relation names) to dense ids.

use entmatcher_support::json::{FromJson, Json, JsonError, Map, ToJson};
use std::collections::HashMap;

/// Bidirectional map between strings and dense `u32` ids.
///
/// Ids are assigned in first-seen order, so loading the same file twice
/// yields identical ids — determinism the whole experiment harness relies on.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

// Only `names` is serialized; the lookup index would store every string a
// second time, so deserialization leaves it empty and callers run
// `rebuild_index` (the graph-level `rehydrate` does this for whole pairs).
impl ToJson for Interner {
    fn to_json(&self) -> Json {
        let mut map = Map::new();
        map.insert("names", &self.names);
        Json::Obj(map)
    }
}

impl FromJson for Interner {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Interner {
            names: v.field("names")?,
            index: HashMap::new(),
        })
    }
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Resolves an id back to its name.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }

    /// Rebuilds the lookup index after deserialization (the `HashMap` side
    /// is skipped by the encoder to avoid storing every string twice).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("alpha");
        let b = it.intern("beta");
        assert_ne!(a, b);
        assert_eq!(it.intern("alpha"), a);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut it = Interner::new();
        let id = it.intern("dbpedia.org/resource/Tokyo");
        assert_eq!(it.resolve(id), Some("dbpedia.org/resource/Tokyo"));
        assert_eq!(it.resolve(99), None);
        assert_eq!(it.get("dbpedia.org/resource/Tokyo"), Some(id));
        assert_eq!(it.get("missing"), None);
    }

    #[test]
    fn ids_are_first_seen_order() {
        let mut it = Interner::new();
        for (i, name) in ["x", "y", "z"].iter().enumerate() {
            assert_eq!(it.intern(name), i as u32);
        }
        let collected: Vec<_> = it.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(collected, vec!["x", "y", "z"]);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut it = Interner::new();
        it.intern("a");
        it.intern("b");
        let json = json_roundtrip(&it);
        assert_eq!(json.get("a"), Some(0));
        assert_eq!(json.get("b"), Some(1));
    }

    fn json_roundtrip(it: &Interner) -> Interner {
        // A real JSON round trip: the index side is skipped by the
        // serializer, so it must come back empty and be rebuilt.
        let text = entmatcher_support::json::to_string(it);
        let mut out: Interner = entmatcher_support::json::from_str(&text).unwrap();
        assert!(out.index.is_empty(), "index must not be serialized");
        out.rebuild_index();
        out
    }
}
