//! The end-to-end embedding-matching pipeline (Algorithm 1's
//! `Embedding_Matching()`): similarity metric -> score optimizer ->
//! matcher, with wall-time and peak-auxiliary-memory instrumentation
//! feeding the paper's efficiency analyses (Figure 5, Tables 6–8).

use crate::dummy::pad_with_dummies;
use crate::matching::{MatchContext, Matcher, Matching};
use crate::score::ScoreOptimizer;
use crate::similarity::{similarity_matrix, SimilarityMetric};
use entmatcher_linalg::Matrix;
use std::time::{Duration, Instant};

/// A composed matching pipeline.
pub struct MatchPipeline {
    /// Similarity metric deriving `S` from the embeddings.
    pub metric: SimilarityMetric,
    /// Score optimizer refining `S`.
    pub optimizer: Box<dyn ScoreOptimizer>,
    /// Matcher producing aligned pairs.
    pub matcher: Box<dyn Matcher>,
    /// Whether to square the score matrix with dummy nodes before matching
    /// (the paper's unmatchable-setting protocol for Hun./SMat, §5.1).
    pub pad_dummies: bool,
    /// Score given to dummy cells when padding, as a quantile of the
    /// observed score distribution. For the Hungarian matcher the exact
    /// value is immaterial (the number of dummy assignments is fixed by
    /// the imbalance, so the dummy score is a constant offset of every
    /// solution); for Gale–Shapley it acts as an abstention threshold —
    /// a source proposes to a dummy once all targets scoring above the
    /// quantile have rejected it.
    pub dummy_quantile: f64,
}

/// Outcome of one pipeline execution.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The matching decisions.
    pub matching: Matching,
    /// Wall-clock time of similarity + optimization + matching.
    pub elapsed: Duration,
    /// Time spent computing the raw similarity matrix.
    pub similarity_time: Duration,
    /// Time spent in the score optimizer.
    pub optimize_time: Duration,
    /// Time spent in the matcher (including dummy padding).
    pub match_time: Duration,
    /// Estimated peak auxiliary heap bytes (score matrix + per-stage
    /// overhead), the basis of the Figure 5 memory comparison.
    pub peak_aux_bytes: usize,
}

/// Estimates a quantile of the score distribution from a deterministic
/// sample (full sorting of an n^2 matrix would dominate the pipeline).
fn score_quantile(scores: &Matrix, q: f64) -> f32 {
    let data = scores.as_slice();
    if data.is_empty() {
        return 0.0;
    }
    let stride = (data.len() / 20_000).max(1);
    let mut sample: Vec<f32> = data.iter().step_by(stride).copied().collect();
    sample.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((sample.len() - 1) as f64 * q).round() as usize;
    sample[idx]
}

impl MatchPipeline {
    /// Composes a pipeline.
    pub fn new(
        metric: SimilarityMetric,
        optimizer: Box<dyn ScoreOptimizer>,
        matcher: Box<dyn Matcher>,
    ) -> Self {
        MatchPipeline {
            metric,
            optimizer,
            matcher,
            pad_dummies: false,
            dummy_quantile: 0.9,
        }
    }

    /// Enables dummy-node padding (see [`crate::dummy`]) with the given
    /// score quantile for dummy cells.
    pub fn with_dummies(mut self, dummy_quantile: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&dummy_quantile),
            "quantile out of range"
        );
        self.pad_dummies = true;
        self.dummy_quantile = dummy_quantile;
        self
    }

    /// Composite name, e.g. `"cosine+CSLS+Greedy"`.
    pub fn describe(&self) -> String {
        format!(
            "{}+{}+{}",
            self.metric.name(),
            self.optimizer.name(),
            self.matcher.name()
        )
    }

    /// Runs the full pipeline on unified candidate embeddings
    /// (`n_s x d` source rows, `n_t x d` target rows).
    pub fn execute(&self, source: &Matrix, target: &Matrix, ctx: &MatchContext) -> ExecutionReport {
        let start = Instant::now();
        let (n_s, n_t) = (source.rows(), target.rows());
        let scores = similarity_matrix(source, target, self.metric);
        let similarity_time = start.elapsed();
        let sim_bytes = scores.heap_bytes();
        let opt_start = Instant::now();
        let scores = self.optimizer.apply(scores);
        let optimize_time = opt_start.elapsed();
        let match_start = Instant::now();
        let matching = if self.pad_dummies && n_s != n_t {
            let dummy = score_quantile(&scores, self.dummy_quantile);
            let padded = pad_with_dummies(&scores, dummy);
            let m = self.matcher.run(&padded.scores, ctx);
            padded.strip(&m)
        } else {
            self.matcher.run(&scores, ctx)
        };
        let match_time = match_start.elapsed();
        let n = n_s.max(n_t);
        let pad_bytes = if self.pad_dummies && n_s != n_t {
            n * n * 4
        } else {
            0
        };
        let peak_aux_bytes = sim_bytes
            + self.optimizer.aux_bytes(n_s, n_t)
            + self.matcher.aux_bytes(n_s, n_t)
            + pad_bytes;
        ExecutionReport {
            matching,
            elapsed: start.elapsed(),
            similarity_time,
            optimize_time,
            match_time,
            peak_aux_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::greedy::Greedy;
    use crate::matching::hungarian::Hungarian;
    use crate::score::{csls::Csls, NoOp};

    fn toy_embeddings() -> (Matrix, Matrix) {
        // Three well-separated directions, shared by both sides.
        let m = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.707, 0.707]).unwrap();
        (m.clone(), m)
    }

    #[test]
    fn dinf_pipeline_matches_identity() {
        let (s, t) = toy_embeddings();
        let p = MatchPipeline::new(SimilarityMetric::Cosine, Box::new(NoOp), Box::new(Greedy));
        let r = p.execute(&s, &t, &MatchContext::default());
        assert_eq!(r.matching.assignment(), &[Some(0), Some(1), Some(2)]);
        assert!(r.peak_aux_bytes >= 9 * 4);
        assert_eq!(p.describe(), "cosine+none+Greedy");
    }

    #[test]
    fn csls_pipeline_reports_more_memory_than_dinf() {
        let (s, t) = toy_embeddings();
        let dinf = MatchPipeline::new(SimilarityMetric::Cosine, Box::new(NoOp), Box::new(Greedy));
        let csls = MatchPipeline::new(
            SimilarityMetric::Cosine,
            Box::new(Csls::default()),
            Box::new(Greedy),
        );
        let a = dinf.execute(&s, &t, &MatchContext::default());
        let b = csls.execute(&s, &t, &MatchContext::default());
        assert!(b.peak_aux_bytes > a.peak_aux_bytes);
        assert_eq!(a.matching, b.matching);
    }

    #[test]
    fn dummy_padding_abstains_on_surplus_sources() {
        // 3 sources, 2 targets: sources 0/1 match cleanly, source 2 is a
        // poor fit everywhere and must abstain under Hungarian+dummies.
        let s = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.4, 0.4]).unwrap();
        let t = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let p = MatchPipeline::new(
            SimilarityMetric::Cosine,
            Box::new(NoOp),
            Box::new(Hungarian),
        )
        .with_dummies(0.75);
        let r = p.execute(&s, &t, &MatchContext::default());
        assert_eq!(r.matching.assignment()[0], Some(0));
        assert_eq!(r.matching.assignment()[1], Some(1));
        assert_eq!(r.matching.assignment()[2], None);
    }

    #[test]
    fn elapsed_is_measured() {
        let (s, t) = toy_embeddings();
        let p = MatchPipeline::new(SimilarityMetric::Cosine, Box::new(NoOp), Box::new(Greedy));
        let r = p.execute(&s, &t, &MatchContext::default());
        assert!(r.elapsed.as_nanos() > 0);
        // Stage times are each bounded by the total.
        assert!(r.similarity_time <= r.elapsed);
        assert!(r.optimize_time <= r.elapsed);
        assert!(r.match_time <= r.elapsed);
    }
}
