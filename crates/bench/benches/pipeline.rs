//! End-to-end pipeline benchmarks: each named algorithm preset on a real
//! generated benchmark slice (this is what the paper's per-table time
//! columns measure — similarity + optimization + matching).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use entmatcher_core::AlgorithmPreset;
use entmatcher_data::{benchmarks, generate_pair};
use entmatcher_eval::{EncoderKind, MatchTask};
use std::hint::black_box;
use std::time::Duration;

fn bench_presets(c: &mut Criterion) {
    let pair = generate_pair(&benchmarks::dbp15k("D-Z", 0.05));
    let emb = EncoderKind::Rrea.encode(&pair);
    let task = MatchTask::from_pair(&pair);
    let (src, tgt) = task.candidate_embeddings(&emb);
    let ctx = task.context(&pair);

    let mut group = c.benchmark_group("pipeline_presets_dbp15k");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for preset in AlgorithmPreset::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(preset.name()),
            &preset,
            |bencher, preset| {
                let pipeline = preset.build();
                bencher.iter(|| black_box(pipeline.execute(&src, &tgt, &ctx)));
            },
        );
    }
    group.finish();
}

fn bench_encoders(c: &mut Criterion) {
    let pair = generate_pair(&benchmarks::dbp15k("D-Z", 0.05));
    let mut group = c.benchmark_group("encoders_dbp15k");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for kind in [EncoderKind::Gcn, EncoderKind::Rrea, EncoderKind::Name] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:?}", kind)),
            &kind,
            |bencher, kind| {
                bencher.iter(|| black_box(kind.encode(&pair)));
            },
        );
    }
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for &scale in &[0.02f64, 0.05, 0.1] {
        let spec = benchmarks::dbp15k("D-Z", scale);
        group.bench_with_input(
            BenchmarkId::from_parameter(scale),
            &spec,
            |bencher, spec| {
                bencher.iter(|| black_box(generate_pair(spec)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_presets, bench_encoders, bench_generation);
criterion_main!(benches);
