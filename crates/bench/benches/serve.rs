//! Serving benchmark: queries/sec and tail latency for `MatchService`
//! behind the real HTTP listener, at fixed client concurrency.
//!
//! The full-size configuration loads a 20k x 64 clustered pair, starts
//! the service exactly as `entmatcher serve` does (normalized rows, warm
//! packed operand, batching queue, real `MetricsServer` listener with the
//! `/match/topk` route), and drives it with 8 client threads issuing
//! sequential `POST /match/topk` requests over fresh TCP connections —
//! each request is a full connect / request / parse round trip, so the
//! measured numbers include the accept loop and HTTP glue, not just the
//! GEMM. The query cache is disabled so every request exercises the
//! batch worker; the artifact's `mean_batch` shows how much the queue
//! coalesces under this load.
//!
//! `BENCH_serve.json` records qps plus exact p50/p99 latency (computed
//! from the sorted per-request samples, not histogram buckets) and is
//! gated by `scripts/bench_gate.sh`: >=20% qps regression or >=20% p99
//! inflation against the committed baseline fails.
//!
//! Modes:
//! * default — 20k entities, d = 64, 8 clients x 250 requests;
//! * `ENTMATCHER_BENCH_QUICK=1` / `--test` / `--quick` — CI smoke: 2k
//!   entities, 4 clients x 30 requests, artifact in the temp dir.
//!
//! Output path: `ENTMATCHER_SERVE_BENCH_OUT` if set; otherwise
//! `BENCH_serve.json` in the workspace root (quick mode defaults into the
//! temp dir so `cargo test` runs do not dirty the tree).

use entmatcher_core::{MatchService, ServeConfig, TargetIndex};
use entmatcher_data::{clustered_embeddings, EmbeddingSpec};
use entmatcher_linalg::normalize_rows_l2;
use entmatcher_support::json::{self, Json, Map};
use entmatcher_support::telemetry;
use entmatcher_support::telemetry::expose::{MetricsServer, Request, Response, Routes};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const K: usize = 10;

/// One measured request round trip.
struct Sample {
    latency: Duration,
    batch_size: u64,
}

/// POSTs one top-k query over a fresh connection and parses the reply.
fn query(addr: &str, ids: &[u32], k: usize) -> Sample {
    let id_list = ids
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let body = format!("{{\"ids\": [{id_list}], \"k\": {k}}}");
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect to serve listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set read timeout");
    write!(
        stream,
        "POST /match/topk HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let latency = started.elapsed();
    assert!(
        response.starts_with("HTTP/1.1 200 OK"),
        "bad response: {response}"
    );
    let payload = response.split_once("\r\n\r\n").expect("body split").1;
    let doc = Json::parse(payload).expect("response JSON");
    let batch_size = doc
        .get("batch_size")
        .and_then(|v| v.as_f64())
        .expect("batch_size field") as u64;
    Sample {
        latency,
        batch_size,
    }
}

/// Runs the fixed-concurrency load and returns (samples, wall seconds).
fn drive(addr: &str, clients: usize, requests: usize, n_source: usize) -> (Vec<Sample>, f64) {
    let started = Instant::now();
    let samples: Vec<Sample> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.to_string();
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(requests);
                    for r in 0..requests {
                        // Distinct id pairs per request; the cache is off,
                        // so this just spreads the query rows around.
                        let a = ((c * requests + r) * 7919) % n_source;
                        let b = (a + 13) % n_source;
                        out.push(query(&addr, &[a as u32, b as u32], K));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    (samples, started.elapsed().as_secs_f64())
}

fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = std::env::var("ENTMATCHER_BENCH_QUICK").ok().as_deref() == Some("1")
        || args.iter().any(|a| a == "--test" || a == "--quick");

    let out_path = std::env::var("ENTMATCHER_SERVE_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            if quick {
                std::env::temp_dir().join("BENCH_serve.json")
            } else {
                let root = std::env::var("CARGO_MANIFEST_DIR")
                    .map(|p| {
                        std::path::Path::new(&p)
                            .ancestors()
                            .nth(2)
                            .expect("workspace root")
                            .to_path_buf()
                    })
                    .unwrap_or_else(|_| std::path::PathBuf::from("."));
                root.join("BENCH_serve.json")
            }
        });

    let (entities, dim, clusters, clients, requests) = if quick {
        (2000, 32, 50, 4, 30)
    } else {
        (20_000, 64, 200, 8, 250)
    };

    eprintln!("serve: generating {entities} x {dim} clustered pair ({clusters} clusters)...");
    let pair = clustered_embeddings(&EmbeddingSpec {
        entities,
        dim,
        clusters,
        spread: 0.25,
        noise: 0.05,
        seed: 0x5E12,
    });
    let (mut source, mut target) = (pair.source, pair.target);
    normalize_rows_l2(&mut source);
    normalize_rows_l2(&mut target);
    let n_source = source.rows();

    // Cache off: every request must cross the batching queue and the
    // fused pass, so qps/p99 measure the serving stack, not replay.
    let cfg = ServeConfig {
        cache_capacity: 0,
        batch_wait: Duration::from_micros(200),
        ..ServeConfig::default()
    };
    let service =
        Arc::new(MatchService::start(source, TargetIndex::Matrix(target), cfg).expect("service"));
    let routes = Routes {
        paths: vec!["/match/topk".into()],
        handler: {
            let service = Arc::clone(&service);
            Arc::new(move |req: &Request| -> Option<Response> {
                (req.method == "POST" && req.path == "/match/topk")
                    .then(|| service.handle_topk(&req.body))
            })
        },
    };
    let server = MetricsServer::start_with_routes(
        telemetry::global(),
        "127.0.0.1:0",
        Duration::from_millis(250),
        Some(routes),
    )
    .expect("bind serve listener");
    let addr = server.addr().to_string();
    eprintln!("serve: listening on {addr}, warming up...");

    // Warmup: fill the pool and fault in the packed operand.
    for w in 0..8 {
        let _ = query(&addr, &[w as u32], K);
    }

    eprintln!("serve: driving {clients} clients x {requests} requests (k={K})...");
    let (mut samples, wall_seconds) = drive(&addr, clients, requests, n_source);
    let total = samples.len();
    let qps = total as f64 / wall_seconds;
    let mean_batch =
        samples.iter().map(|s| s.batch_size as f64).sum::<f64>() / total as f64;
    samples.sort_by_key(|s| s.latency);
    let sorted: Vec<Duration> = samples.iter().map(|s| s.latency).collect();
    let p50_ms = percentile_ms(&sorted, 0.50);
    let p99_ms = percentile_ms(&sorted, 0.99);
    eprintln!(
        "serve: {total} requests in {wall_seconds:.2}s = {qps:.0} qps, \
         p50 {p50_ms:.2}ms p99 {p99_ms:.2}ms, mean batch {mean_batch:.1}"
    );

    server.shutdown();
    service.stop();

    let mut doc = Map::new();
    doc.insert("schema", "entmatcher/serve-bench/v1");
    doc.insert(
        "note",
        "qps over full HTTP round trips at fixed concurrency; p50/p99 from sorted samples; cache off",
    );
    doc.insert("n", entities);
    doc.insert("d", dim);
    doc.insert("k", K);
    doc.insert("clients", clients);
    doc.insert("requests", total);
    doc.insert("wall_seconds", wall_seconds);
    doc.insert("qps", qps);
    doc.insert("p50_ms", p50_ms);
    doc.insert("p99_ms", p99_ms);
    doc.insert("mean_batch", mean_batch);
    doc.insert(
        "threads",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    );
    doc.insert("pool_width", entmatcher_linalg::parallel::workers());
    doc.insert("simd", entmatcher_linalg::simd::active().name());
    doc.insert("quick", quick);
    let text = Json::Obj(doc).pretty();
    std::fs::write(&out_path, &text).expect("write BENCH_serve.json");

    // Self-check: parse back and demand finite, sane numbers. Absolute
    // thresholds live in bench_gate.sh against the committed baseline.
    let parsed = json::Json::parse(&text).expect("BENCH_serve.json must parse");
    let qps_back = parsed.get("qps").and_then(|v| v.as_f64()).expect("qps");
    let p99_back = parsed.get("p99_ms").and_then(|v| v.as_f64()).expect("p99_ms");
    let p50_back = parsed.get("p50_ms").and_then(|v| v.as_f64()).expect("p50_ms");
    assert!(qps_back.is_finite() && qps_back > 0.0, "self-check: bad qps {qps_back}");
    assert!(
        p99_back.is_finite() && p99_back >= p50_back && p50_back > 0.0,
        "self-check: bad latency quantiles p50={p50_back} p99={p99_back}"
    );
    let batch_back = parsed
        .get("mean_batch")
        .and_then(|v| v.as_f64())
        .expect("mean_batch");
    assert!(
        batch_back >= 1.0,
        "self-check: every served request sits in a batch of >= 1, got {batch_back}"
    );
    println!(
        "serve bench: wrote {} ({total} requests, {qps:.0} qps, self-check ok)",
        out_path.display()
    );
}
