//! Quickstart: generate a benchmark KG pair, learn unified embeddings,
//! match entities with two algorithms, and score the results.
//!
//! Run with: `cargo run --example quickstart --release`

use entmatcher::prelude::*;

fn main() {
    // A small synthetic analogue of the DBP15K D-Z pair (3% scale keeps
    // this example under a second). `scale = 1.0` reproduces the paper's
    // 15,000-link benchmark.
    let spec = entmatcher::data::benchmarks::dbp15k("D-Z", 0.03);
    let pair = generate_pair(&spec);
    let stats = pair.stats();
    println!(
        "dataset {}: {} entities, {} triples, {} gold links (avg degree {:.1})",
        stats.id, stats.entities, stats.triples, stats.gold_links, stats.avg_degree
    );

    // Stage 1 (Algorithm 1, line 1): representation learning. The encoder
    // sees only the training split of the gold links.
    let embeddings = RreaEncoder::default().encode(&pair);
    println!(
        "encoded both KGs into a unified {}-dimensional space using {} seed links",
        embeddings.dim(),
        pair.train_links().len()
    );

    // Stage 2 (the paper's subject): matching in the embedding space.
    // Candidates are the test-split entities.
    let task = MatchTask::from_pair(&pair);
    let (src, tgt) = task.candidate_embeddings(&embeddings);
    println!(
        "matching {} source candidates against {} targets",
        src.rows(),
        tgt.rows()
    );

    for preset in [
        AlgorithmPreset::DInf,
        AlgorithmPreset::Csls,
        AlgorithmPreset::Hungarian,
    ] {
        let pipeline = preset.build();
        let report = pipeline.execute(&src, &tgt, &MatchContext::default());
        let links = task.matching_to_links(&report.matching);
        let scores = evaluate_links(&links, &task.gold);
        println!(
            "{:<6} ({:<22}) F1 = {:.3}   [{:.0} ms, ~{:.1} MB aux]",
            preset.name(),
            pipeline.describe(),
            scores.f1,
            report.elapsed.as_secs_f64() * 1e3,
            report.peak_aux_bytes as f64 / 1e6,
        );
    }
}
