//! Experiment grid runner: one cell = (KG pair, encoder setting, matching
//! algorithm) -> quality + efficiency numbers. Drives every table of the
//! reproduction.

use crate::encoders::EncoderKind;
use crate::metrics::{evaluate_links, AlignmentScores};
use crate::task::MatchTask;
use entmatcher_core::spec::OneToOne;
use entmatcher_core::AlgorithmPreset;
use entmatcher_embed::UnifiedEmbeddings;
use entmatcher_graph::KgPair;
use entmatcher_support::json::{FromJson, Json, JsonError, Map, ToJson};
use entmatcher_support::telemetry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Result of one experiment cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Benchmark pair id (e.g. `"D-Z"`).
    pub dataset: String,
    /// Encoder prefix (`G-`, `R-`, `N-`, `NR-`).
    pub encoder: String,
    /// Algorithm name (`DInf`, `CSLS`, ...).
    pub algorithm: String,
    /// Quality metrics against the test gold links.
    pub scores: AlignmentScores,
    /// Wall time of the matching pipeline (similarity + optimize + match).
    pub elapsed: Duration,
    /// Estimated peak auxiliary memory in bytes.
    pub peak_aux_bytes: usize,
}

// `elapsed` travels as fractional seconds so reports stay readable.
impl ToJson for CellResult {
    fn to_json(&self) -> Json {
        let mut m = Map::new();
        m.insert("dataset", &self.dataset);
        m.insert("encoder", &self.encoder);
        m.insert("algorithm", &self.algorithm);
        m.insert("scores", &self.scores);
        m.insert("elapsed", self.elapsed.as_secs_f64());
        m.insert("peak_aux_bytes", self.peak_aux_bytes);
        Json::Obj(m)
    }
}

impl FromJson for CellResult {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CellResult {
            dataset: v.field("dataset")?,
            encoder: v.field("encoder")?,
            algorithm: v.field("algorithm")?,
            scores: v.field("scores")?,
            elapsed: Duration::from_secs_f64(v.field("elapsed")?),
            peak_aux_bytes: v.field("peak_aux_bytes")?,
        })
    }
}

/// Runs one algorithm on a prepared pair + embeddings. `pad_dummies`
/// enables the §5.1 dummy-node protocol for the hard-1-to-1 matchers when
/// the candidate sides are unbalanced.
pub fn run_cell(
    pair: &KgPair,
    encoder_prefix: &str,
    emb: &UnifiedEmbeddings,
    preset: AlgorithmPreset,
    pad_dummies: bool,
) -> CellResult {
    let _cell_span = telemetry::span(format!(
        "cell:{}/{}{}",
        pair.id,
        encoder_prefix,
        preset.name()
    ));
    let task = MatchTask::from_pair(pair);
    let (source, target) = task.candidate_embeddings(emb);
    let ctx = task.context(pair);
    let mut pipeline = preset.build();
    if pad_dummies && preset.spec().one_to_one == OneToOne::Yes {
        pipeline = pipeline.with_dummies(0.9);
    }
    let report = pipeline.execute(&source, &target, &ctx);
    let links = task.matching_to_links(&report.matching);
    let scores = evaluate_links(&links, &task.gold);
    CellResult {
        dataset: pair.id.clone(),
        encoder: encoder_prefix.to_owned(),
        algorithm: preset.name().to_owned(),
        scores,
        elapsed: report.elapsed,
        peak_aux_bytes: report.peak_aux_bytes,
    }
}

/// Grid driver: encodes a pair once per encoder setting, then evaluates a
/// list of algorithms against the shared embeddings. Algorithm cells run
/// concurrently on a small worker pool (each cell's kernels are themselves
/// row-parallel, so two workers saturate without oversubscribing).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentGrid {
    /// Number of algorithm cells evaluated concurrently.
    pub workers: usize,
    /// Enable the dummy-node protocol (unmatchable setting).
    pub pad_dummies: bool,
}

impl Default for ExperimentGrid {
    fn default() -> Self {
        ExperimentGrid {
            workers: 2,
            pad_dummies: false,
        }
    }
}

impl ExperimentGrid {
    /// Runs `presets` against one `(pair, encoder)` setting, preserving
    /// preset order in the output.
    pub fn run(
        &self,
        pair: &KgPair,
        kind: EncoderKind,
        presets: &[AlgorithmPreset],
    ) -> Vec<CellResult> {
        let emb = kind.encode(pair);
        self.run_with_embeddings(pair, kind.prefix(), &emb, presets)
    }

    /// Like [`Self::run`] but with pre-computed embeddings (lets callers
    /// reuse one encoding across algorithm sweeps).
    pub fn run_with_embeddings(
        &self,
        pair: &KgPair,
        encoder_prefix: &str,
        emb: &UnifiedEmbeddings,
        presets: &[AlgorithmPreset],
    ) -> Vec<CellResult> {
        let results: Mutex<Vec<Option<CellResult>>> = Mutex::new(vec![None; presets.len()]);
        let next = AtomicUsize::new(0);
        let workers = self.workers.clamp(1, presets.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let next = &next;
                let results = &results;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= presets.len() {
                        break;
                    }
                    let cell = run_cell(pair, encoder_prefix, emb, presets[i], self.pad_dummies);
                    // Progress signal for long grids: one tick per finished
                    // cell, readable from another thread via `snapshot()`.
                    telemetry::add("grid.heartbeat", 1);
                    results.lock().expect("no panics hold the lock")[i] = Some(cell);
                });
            }
        });
        results
            .into_inner()
            .expect("no panics hold the lock")
            .into_iter()
            .map(|c| c.expect("every cell computed"))
            .collect()
    }
}

/// Computes the "Imp." column of Tables 4–6: the mean relative improvement
/// of an algorithm's F1 over the DInf baseline across datasets, in percent.
pub fn improvement_over_baseline(algorithm_f1: &[f64], baseline_f1: &[f64]) -> f64 {
    assert_eq!(algorithm_f1.len(), baseline_f1.len());
    if algorithm_f1.is_empty() {
        return 0.0;
    }
    let rel: f64 = algorithm_f1
        .iter()
        .zip(baseline_f1.iter())
        .map(|(&a, &b)| if b > 0.0 { (a - b) / b } else { 0.0 })
        .sum();
    100.0 * rel / algorithm_f1.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use entmatcher_data::{generate_pair, PairSpec};

    fn small_pair() -> KgPair {
        generate_pair(&PairSpec {
            classes: 150,
            fillers_per_kg: 0,
            latent_edges: 1000,
            relations: 12,
            heterogeneity: 0.3,
            ..Default::default()
        })
    }

    #[test]
    fn run_cell_produces_sane_scores() {
        let pair = small_pair();
        let emb = EncoderKind::Rrea.encode(&pair);
        let cell = run_cell(&pair, "R-", &emb, AlgorithmPreset::DInf, false);
        assert_eq!(cell.dataset, "toy");
        assert_eq!(cell.algorithm, "DInf");
        // 1-to-1 full-coverage setting: P == R == F1.
        assert!((cell.scores.precision - cell.scores.recall).abs() < 1e-12);
        assert!(
            cell.scores.f1 > 0.3,
            "RREA+DInf should clear 0.3 on an easy pair"
        );
        assert!(cell.peak_aux_bytes > 0);
    }

    #[test]
    fn grid_preserves_preset_order_and_matches_serial() {
        let pair = small_pair();
        let emb = EncoderKind::Gcn.encode(&pair);
        let presets = [
            AlgorithmPreset::DInf,
            AlgorithmPreset::Csls,
            AlgorithmPreset::Hungarian,
        ];
        let grid = ExperimentGrid {
            workers: 3,
            pad_dummies: false,
        };
        let results = grid.run_with_embeddings(&pair, "G-", &emb, &presets);
        assert_eq!(results.len(), 3);
        for (r, p) in results.iter().zip(presets.iter()) {
            assert_eq!(r.algorithm, p.name());
            let serial = run_cell(&pair, "G-", &emb, *p, false);
            assert_eq!(r.scores.f1, serial.scores.f1, "{} differs", p.name());
        }
    }

    #[test]
    fn grid_emits_cell_spans_and_heartbeat() {
        let _guard = crate::telemetry_test_lock();
        telemetry::reset();
        telemetry::set_enabled(true);
        let pair = small_pair();
        let emb = EncoderKind::Gcn.encode(&pair);
        let presets = [
            AlgorithmPreset::DInf,
            AlgorithmPreset::Csls,
            AlgorithmPreset::StableMarriage,
        ];
        ExperimentGrid::default().run_with_embeddings(&pair, "G-", &emb, &presets);
        let trace = telemetry::snapshot();
        telemetry::set_enabled(false);
        assert!(trace.counter("grid.heartbeat").unwrap_or(0) >= 3);
        for p in &presets {
            let name = format!("cell:{}/G-{}", pair.id, p.name());
            let cell = trace.span(&name).unwrap_or_else(|| panic!("{name} span"));
            // Each cell wraps a full pipeline execution, recorded as a
            // child span of the cell (workers make cells trace roots).
            assert!(trace
                .children(cell.id)
                .iter()
                .any(|s| s.name == "pipeline"));
        }
    }

    #[test]
    fn improvement_math() {
        let imp = improvement_over_baseline(&[0.6, 0.8], &[0.5, 0.4]);
        // (0.1/0.5 + 0.4/0.4) / 2 = (0.2 + 1.0)/2 = 60%.
        assert!((imp - 60.0).abs() < 1e-9);
        assert_eq!(improvement_over_baseline(&[], &[]), 0.0);
    }
}
