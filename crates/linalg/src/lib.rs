#![warn(missing_docs)]

//! Dense linear-algebra kernels for the EntMatcher reproduction.
//!
//! Everything in the embedding-matching pipeline is built on one data
//! structure: a dense, row-major `f32` [`Matrix`]. Entity embeddings are an
//! `n x d` matrix, pairwise score matrices are `n_s x n_t`, and every score
//! optimizer (CSLS, RInf, Sinkhorn) is a transformation of such a matrix.
//!
//! The crate deliberately avoids external BLAS: the kernels the paper's
//! algorithms need (row-normalized products, per-row top-k, argsort/ranking,
//! row/column normalization) are simple enough that contiguous row-major
//! loops auto-vectorize well, and keeping them local lets the evaluation
//! harness account for every byte of auxiliary memory (paper Figure 5).
//!
//! Parallelism uses `std::thread::scope` over contiguous row chunks (see
//! [`parallel`]); no work-stealing runtime is required for the regular,
//! embarrassingly parallel loops in this workload.

pub mod error;
pub mod matrix;
pub mod ops;
pub mod parallel;
pub mod rank;
pub mod snapshot;
pub mod stats;

pub use error::LinalgError;
pub use matrix::Matrix;
pub use ops::{dot, l2_norm, matmul_transposed, normalize_rows_l2};
pub use rank::{argmax, argsort_desc, rank_desc, top_k_desc};

/// Result alias for fallible linalg operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
