//! Exhaustive shape-equivalence suite for the blocked GEMM and the fused
//! similarity→reduction kernels.
//!
//! The blocked kernel's contract is *bitwise* equality with the naive
//! triple loop — both accumulate the d dimension strictly sequentially —
//! so every comparison here is exact (`assert_eq!` on whole matrices),
//! never tolerance-based. The shape grid deliberately straddles every
//! tiling boundary: below MR (4), below NR (8), non-multiples of both
//! (3, 7, 17), a full tile multiple (64), and the empty edge (0).

use entmatcher_linalg::{
    fused_argmax_affine, fused_topk, fused_topk_means, matmul_blocked, matmul_naive, Matrix,
};
use entmatcher_linalg::rank::top_k_mean;
use entmatcher_linalg::{argmax, top_k_desc};
use entmatcher_support::rng::{Rng, SeedableRng, StdRng};

const SIZES: [usize; 6] = [0, 1, 3, 7, 17, 64];

/// Deterministic non-trivial fill: varies in both indices, includes
/// negatives, and never repeats within a tile.
fn patterned(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let x = (r * 31 + c * 17 + salt * 7) % 23;
        (x as f32 - 11.0) * 0.25
    })
}

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen::<f32>() * 2.0 - 1.0)
}

#[test]
fn blocked_matches_naive_on_exhaustive_shape_grid() {
    for &m in &SIZES {
        for &n in &SIZES {
            for &d in &SIZES {
                let a = patterned(m, d, 1);
                let b = patterned(n, d, 2);
                let naive = matmul_naive(&a, &b).unwrap();
                let blocked = matmul_blocked(&a, &b).unwrap();
                assert_eq!(
                    blocked, naive,
                    "blocked != naive at m={m} n={n} d={d} (must be bitwise equal)"
                );
            }
        }
    }
}

#[test]
fn blocked_matches_naive_on_random_tile_straddling_shapes() {
    // Shapes chosen to land just off the MR=4 / NR=8 boundaries and the
    // panel-strip boundary, with random (not patterned) data.
    for (m, n, d, seed) in [
        (5, 9, 13, 10u64),
        (4, 8, 16, 11),
        (33, 65, 31, 12),
        (130, 257, 70, 13),
        (1, 300, 1, 14),
        (300, 1, 3, 15),
    ] {
        let a = random(m, d, seed);
        let b = random(n, d, seed ^ 0xFF);
        let naive = matmul_naive(&a, &b).unwrap();
        let blocked = matmul_blocked(&a, &b).unwrap();
        assert_eq!(blocked, naive, "m={m} n={n} d={d} diverged");
    }
}

#[test]
fn fused_topk_matches_dense_topk_on_seeded_random_matrices() {
    for (m, n, d, k, seed) in [
        (40, 60, 16, 5, 21u64),
        (17, 33, 7, 1, 22),
        (9, 130, 32, 10, 23),
        (64, 64, 64, 64, 24), // k == n: full row retained
        (3, 7, 5, 100, 25),   // k > n: clamped
    ] {
        let a = random(m, d, seed);
        let b = random(n, d, seed ^ 0xAB);
        let dense = matmul_naive(&a, &b).unwrap();
        let fused = fused_topk(&a, &b, k).unwrap();
        assert_eq!(fused.len(), m);
        for (i, row_topk) in fused.iter().enumerate() {
            let want = top_k_desc(dense.row(i), k);
            assert_eq!(row_topk.len(), want.len(), "row {i} length");
            for (got, &wi) in row_topk.iter().zip(want.iter()) {
                // Indices agree, and values are the exact dense scores.
                assert_eq!(got.0 as usize, wi, "row {i} index order");
                assert_eq!(got.1, dense.get(i, wi), "row {i} value");
            }
        }
    }
}

#[test]
fn fused_means_and_argmax_match_dense_reductions() {
    let (m, n, d, k) = (50, 70, 24, 8);
    let a = random(m, d, 31);
    let b = random(n, d, 32);
    let dense = matmul_naive(&a, &b).unwrap();

    let means = fused_topk_means(&a, &b, k).unwrap();
    for i in 0..m {
        assert_eq!(means[i], top_k_mean(dense.row(i), k), "row {i} mean");
    }

    let picks = fused_argmax_affine(&a, &b, 1.0, None, None).unwrap();
    for i in 0..m {
        assert_eq!(picks[i].map(|j| j as usize), argmax(dense.row(i)), "row {i} argmax");
    }
}

#[test]
fn fused_affine_offsets_match_dense_corrected_argmax() {
    // The CSLS decision shape: (2s + (-phi_u)) + (-phi_v) per cell, argmax
    // per row — must equal the same expression evaluated on the dense
    // matrix in the same operation order.
    let (m, n, d) = (30, 45, 12);
    let a = random(m, d, 41);
    let b = random(n, d, 42);
    let row_off: Vec<f32> = (0..m).map(|i| -((i % 5) as f32) * 0.1).collect();
    let col_off: Vec<f32> = (0..n).map(|j| -((j % 7) as f32) * 0.05).collect();
    let dense = matmul_naive(&a, &b).unwrap();
    let picks = fused_argmax_affine(&a, &b, 2.0, Some(&row_off), Some(&col_off)).unwrap();
    for i in 0..m {
        let corrected: Vec<f32> = (0..n)
            .map(|j| (2.0 * dense.get(i, j) + row_off[i]) + col_off[j])
            .collect();
        assert_eq!(picks[i].map(|j| j as usize), argmax(&corrected), "row {i}");
    }
}

#[test]
fn empty_operands_are_well_formed_everywhere() {
    let a = Matrix::zeros(0, 8);
    let b = random(5, 8, 51);
    assert_eq!(matmul_blocked(&a, &b).unwrap().shape(), (0, 5));
    assert_eq!(matmul_blocked(&b, &a).unwrap().shape(), (5, 0));
    assert!(fused_topk(&a, &b, 3).unwrap().is_empty());
    let empty_rows = fused_topk(&b, &a, 3).unwrap();
    assert_eq!(empty_rows.len(), 5);
    assert!(empty_rows.iter().all(Vec::is_empty));
    assert_eq!(
        fused_argmax_affine(&b, &a, 1.0, None, None).unwrap(),
        vec![None; 5]
    );
}
