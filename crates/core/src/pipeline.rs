//! The end-to-end embedding-matching pipeline (Algorithm 1's
//! `Embedding_Matching()`): similarity metric -> score optimizer ->
//! matcher, with wall-time and peak-auxiliary-memory instrumentation
//! feeding the paper's efficiency analyses (Figure 5, Tables 6–8).
//!
//! Stage timings are recorded as telemetry spans (`pipeline` with
//! `similarity`/`optimize`/`match` children, plus a `pad` child under
//! `match` when the dummy protocol runs); the [`ExecutionReport`] fields
//! are derived from those same span measurements, so the report and an
//! exported trace always agree.

use crate::ann::{
    densify_fill, densify_shortlist, CandidateSource, IvfCandidates, IvfParams, LshCandidates,
};
use crate::blocking::LshBlocker;
use crate::dummy::pad_with_dummies;
use crate::matching::{MatchContext, Matcher, Matching};
use crate::score::ScoreOptimizer;
use crate::similarity::{similarity_matrix, SimilarityMetric};
use entmatcher_linalg::{
    matmul_blocked_packed, normalize_rows_l2, Matrix, PackedAny, Precision,
};
use entmatcher_support::telemetry;
use std::time::Duration;

/// How the pipeline generates the candidate scores the optimizer and
/// matcher consume.
#[derive(Debug, Clone)]
pub enum CandidateStrategy {
    /// Dense `n_s x n_t` similarity matrix — every pair scored. The
    /// default, and the only strategy for distance metrics.
    Exact,
    /// LSH blocking: only bucket-colliding pairs scored, rescored into a
    /// top-k shortlist per source.
    Lsh(LshBlocker),
    /// IVF-flat ANN index over the target side, probed per source.
    Ivf(IvfParams),
}

impl CandidateStrategy {
    /// Short name used in traces and reports.
    pub fn name(&self) -> &'static str {
        match self {
            CandidateStrategy::Exact => "exact",
            CandidateStrategy::Lsh(_) => "lsh",
            CandidateStrategy::Ivf(_) => "ivf",
        }
    }
}

/// A composed matching pipeline.
pub struct MatchPipeline {
    /// Similarity metric deriving `S` from the embeddings.
    pub metric: SimilarityMetric,
    /// Score optimizer refining `S`.
    pub optimizer: Box<dyn ScoreOptimizer>,
    /// Matcher producing aligned pairs.
    pub matcher: Box<dyn Matcher>,
    /// Candidate generation strategy. Non-exact strategies replace the
    /// dense similarity pass with a per-source shortlist (cosine metric
    /// only — the ANN structures speak dot products); the shortlist is
    /// densified with a below-minimum fill so the downstream optimizer
    /// and matcher are unchanged.
    pub candidates: CandidateStrategy,
    /// Shortlist length per source for non-exact strategies.
    pub shortlist_k: usize,
    /// Whether to square the score matrix with dummy nodes before matching
    /// (the paper's unmatchable-setting protocol for Hun./SMat, §5.1).
    pub pad_dummies: bool,
    /// Score given to dummy cells when padding, as a quantile of the
    /// observed score distribution. For the Hungarian matcher the exact
    /// value is immaterial (the number of dummy assignments is fixed by
    /// the imbalance, so the dummy score is a constant offset of every
    /// solution); for Gale–Shapley it acts as an abstention threshold —
    /// a source proposes to a dummy once all targets scoring above the
    /// quantile have rejected it.
    pub dummy_quantile: f64,
    /// Storage precision for the target-side packed operand in the cosine
    /// similarity pass. At `F32` (default) nothing changes. At `F16`/`Int8`
    /// the exact-cosine pass packs the normalized target into quantized
    /// GEMM strips and scores through the dequantize-fused micro-kernels,
    /// and the IVF strategy stores its posting lists quantized — trading a
    /// bounded score perturbation (f16 exact-widening; int8 ±scale/2 per
    /// element) for 2x/4x smaller packed operands. Distance metrics and
    /// LSH rescoring stay f32 (their kernels are not packed products).
    pub precision: Precision,
}

/// Outcome of one pipeline execution.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The matching decisions.
    pub matching: Matching,
    /// Wall-clock time of similarity + optimization + matching.
    pub elapsed: Duration,
    /// Time spent computing the raw similarity matrix.
    pub similarity_time: Duration,
    /// Time spent in the score optimizer.
    pub optimize_time: Duration,
    /// Time spent in the matcher (including dummy padding).
    pub match_time: Duration,
    /// Estimated peak auxiliary heap bytes (score matrix + per-stage
    /// overhead), the basis of the Figure 5 memory comparison.
    pub peak_aux_bytes: usize,
    /// *Measured* peak live heap bytes over the whole pipeline span, from
    /// the counting allocator. 0 unless `ENTMATCHER_MEM` counting is on
    /// (and the running binary installs
    /// `entmatcher_support::alloc::CountingAlloc`); when present it is the
    /// ground truth the modeled `peak_aux_bytes` is validated against.
    pub measured_heap_peak_bytes: u64,
}

/// Estimates a quantile of the score distribution from a deterministic
/// sample (full sorting of an n^2 matrix would dominate the pipeline).
/// Non-finite scores are excluded — a single NaN would otherwise make the
/// `partial_cmp` sort order (and thus the returned quantile) arbitrary.
fn score_quantile(scores: &Matrix, q: f64) -> f32 {
    let data = scores.as_slice();
    let stride = (data.len() / 20_000).max(1);
    let mut sample: Vec<f32> = data
        .iter()
        .step_by(stride)
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    if sample.is_empty() {
        return 0.0;
    }
    sample.sort_by(|a, b| a.partial_cmp(b).expect("non-finite scores filtered"));
    let idx = ((sample.len() - 1) as f64 * q).round() as usize;
    sample[idx]
}

impl MatchPipeline {
    /// Composes a pipeline.
    pub fn new(
        metric: SimilarityMetric,
        optimizer: Box<dyn ScoreOptimizer>,
        matcher: Box<dyn Matcher>,
    ) -> Self {
        MatchPipeline {
            metric,
            optimizer,
            matcher,
            candidates: CandidateStrategy::Exact,
            shortlist_k: 32,
            pad_dummies: false,
            dummy_quantile: 0.9,
            precision: Precision::F32,
        }
    }

    /// Selects a candidate-generation strategy and the per-source
    /// shortlist length it keeps.
    pub fn with_candidates(mut self, strategy: CandidateStrategy, shortlist_k: usize) -> Self {
        assert!(shortlist_k >= 1, "shortlist must keep at least one candidate");
        self.candidates = strategy;
        self.shortlist_k = shortlist_k;
        self
    }

    /// Selects the storage precision for packed similarity operands (see
    /// the [`MatchPipeline::precision`] field).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Enables dummy-node padding (see [`crate::dummy`]) with the given
    /// score quantile for dummy cells.
    pub fn with_dummies(mut self, dummy_quantile: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&dummy_quantile),
            "quantile out of range"
        );
        self.pad_dummies = true;
        self.dummy_quantile = dummy_quantile;
        self
    }

    /// Composite name, e.g. `"cosine+CSLS+Greedy"`; a non-f32 precision is
    /// appended as `"@f16"` / `"@int8"`.
    pub fn describe(&self) -> String {
        let base = format!(
            "{}+{}+{}",
            self.metric.name(),
            self.optimizer.name(),
            self.matcher.name()
        );
        match self.precision {
            Precision::F32 => base,
            p => format!("{base}@{}", p.name()),
        }
    }

    /// The similarity-stage score matrix under the configured candidate
    /// strategy. Exact (and any non-cosine metric, where the dot-product
    /// ANN structures don't apply) computes the dense matrix; LSH/IVF
    /// build a per-source shortlist on the row-normalized embeddings and
    /// densify it with a below-minimum fill, so non-candidates can never
    /// outrank a scored pair downstream.
    fn candidate_scores(&self, source: &Matrix, target: &Matrix) -> Matrix {
        let source_impl: Box<dyn CandidateSource> = match (&self.candidates, self.metric) {
            (CandidateStrategy::Exact, SimilarityMetric::Cosine)
                if self.precision != Precision::F32 =>
            {
                // Quantized dense cosine: pack the normalized target at the
                // reduced precision and run the dequantize-fused GEMM. The
                // packed operand (the O(n·d) term) shrinks by the element
                // width; the O(n²) score matrix is unchanged.
                let mut s = source.clone();
                let mut t = target.clone();
                normalize_rows_l2(&mut s);
                normalize_rows_l2(&mut t);
                let packed = PackedAny::pack(&t, self.precision);
                return matmul_blocked_packed(&s, &packed)
                    .expect("normalized copies share the embedding dimension");
            }
            (CandidateStrategy::Exact, _) | (_, SimilarityMetric::Euclidean)
            | (_, SimilarityMetric::Manhattan) => {
                return similarity_matrix(source, target, self.metric);
            }
            (CandidateStrategy::Lsh(blocker), SimilarityMetric::Cosine) => {
                Box::new(LshCandidates {
                    blocker: blocker.clone(),
                })
            }
            (CandidateStrategy::Ivf(params), SimilarityMetric::Cosine) => {
                // The pipeline precision overrides an unset (f32) param so
                // `--precision int8` reaches the posting lists without the
                // caller having to thread it into IvfParams by hand.
                let mut params = *params;
                if self.precision != Precision::F32 {
                    params.precision = self.precision;
                }
                Box::new(IvfCandidates { params })
            }
        };
        let mut s = source.clone();
        let mut t = target.clone();
        normalize_rows_l2(&mut s);
        normalize_rows_l2(&mut t);
        let shortlist = source_impl.shortlist(&s, &t, self.shortlist_k);
        telemetry::add(
            "pipeline.shortlist.candidates",
            shortlist.iter().map(|hits| hits.len() as u64).sum(),
        );
        densify_shortlist(&shortlist, target.rows(), densify_fill(&shortlist))
    }

    /// Runs the full pipeline on unified candidate embeddings
    /// (`n_s x d` source rows, `n_t x d` target rows).
    pub fn execute(&self, source: &Matrix, target: &Matrix, ctx: &MatchContext) -> ExecutionReport {
        let total_span = telemetry::span("pipeline");
        let (n_s, n_t) = (source.rows(), target.rows());
        let padding = self.pad_dummies && n_s != n_t;

        let mut sim_span = telemetry::span("similarity");
        let scores = self.candidate_scores(source, target);
        let sim_bytes = scores.heap_bytes();
        sim_span.add_bytes(sim_bytes as u64);
        let similarity_time = sim_span.finish();

        let mut opt_span = telemetry::span("optimize");
        let opt_bytes = self.optimizer.aux_bytes(n_s, n_t);
        opt_span.add_bytes(opt_bytes as u64);
        let scores = self.optimizer.apply(scores);
        let optimize_time = opt_span.finish();

        // With dummy padding the matcher runs on the padded n x n matrix,
        // so its memory estimate must use the padded dimensions too.
        let n = n_s.max(n_t);
        let (match_s, match_t) = if padding { (n, n) } else { (n_s, n_t) };
        let matcher_bytes = self.matcher.aux_bytes(match_s, match_t);
        let pad_bytes = if padding { n * n * 4 } else { 0 };

        let mut match_span = telemetry::span("match");
        match_span.add_bytes((matcher_bytes + pad_bytes) as u64);
        let matching = if padding {
            let mut pad_span = telemetry::span("pad");
            pad_span.add_bytes(pad_bytes as u64);
            let dummy = score_quantile(&scores, self.dummy_quantile);
            let padded = pad_with_dummies(&scores, dummy);
            drop(pad_span);
            let m = self.matcher.run(&padded.scores, ctx);
            padded.strip(&m)
        } else {
            self.matcher.run(&scores, ctx)
        };
        let match_time = match_span.finish();

        let peak_aux_bytes = sim_bytes + opt_bytes + matcher_bytes + pad_bytes;
        // Read the measured peak before `finish()` consumes the guard; the
        // span record keeps the same value for exported traces.
        let measured_heap_peak_bytes = total_span.heap_live_peak();
        ExecutionReport {
            matching,
            elapsed: total_span.finish(),
            similarity_time,
            optimize_time,
            match_time,
            peak_aux_bytes,
            measured_heap_peak_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::greedy::Greedy;
    use crate::matching::hungarian::Hungarian;
    use crate::score::{csls::Csls, NoOp};

    fn toy_embeddings() -> (Matrix, Matrix) {
        // Three well-separated directions, shared by both sides.
        let m = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.707, 0.707]).unwrap();
        (m.clone(), m)
    }

    #[test]
    fn dinf_pipeline_matches_identity() {
        let (s, t) = toy_embeddings();
        let p = MatchPipeline::new(SimilarityMetric::Cosine, Box::new(NoOp), Box::new(Greedy));
        let r = p.execute(&s, &t, &MatchContext::default());
        assert_eq!(r.matching.assignment(), &[Some(0), Some(1), Some(2)]);
        assert!(r.peak_aux_bytes >= 9 * 4);
        assert_eq!(p.describe(), "cosine+none+Greedy");
    }

    #[test]
    fn csls_pipeline_reports_more_memory_than_dinf() {
        let (s, t) = toy_embeddings();
        let dinf = MatchPipeline::new(SimilarityMetric::Cosine, Box::new(NoOp), Box::new(Greedy));
        let csls = MatchPipeline::new(
            SimilarityMetric::Cosine,
            Box::new(Csls::default()),
            Box::new(Greedy),
        );
        let a = dinf.execute(&s, &t, &MatchContext::default());
        let b = csls.execute(&s, &t, &MatchContext::default());
        assert!(b.peak_aux_bytes > a.peak_aux_bytes);
        assert_eq!(a.matching, b.matching);
    }

    #[test]
    fn dummy_padding_abstains_on_surplus_sources() {
        // 3 sources, 2 targets: sources 0/1 match cleanly, source 2 is a
        // poor fit everywhere and must abstain under Hungarian+dummies.
        let s = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.4, 0.4]).unwrap();
        let t = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let p = MatchPipeline::new(
            SimilarityMetric::Cosine,
            Box::new(NoOp),
            Box::new(Hungarian),
        )
        .with_dummies(0.75);
        let r = p.execute(&s, &t, &MatchContext::default());
        assert_eq!(r.matching.assignment()[0], Some(0));
        assert_eq!(r.matching.assignment()[1], Some(1));
        assert_eq!(r.matching.assignment()[2], None);
    }

    #[test]
    fn elapsed_is_measured() {
        let (s, t) = toy_embeddings();
        let p = MatchPipeline::new(SimilarityMetric::Cosine, Box::new(NoOp), Box::new(Greedy));
        let r = p.execute(&s, &t, &MatchContext::default());
        assert!(r.elapsed.as_nanos() > 0);
        // Stage times are each bounded by the total.
        assert!(r.similarity_time <= r.elapsed);
        assert!(r.optimize_time <= r.elapsed);
        assert!(r.match_time <= r.elapsed);
    }

    #[test]
    fn score_quantile_ignores_non_finite_scores() {
        let clean = Matrix::from_vec(1, 5, vec![0.1, 0.2, 0.3, 0.4, 0.5]).unwrap();
        let dirty = Matrix::from_vec(
            1,
            8,
            vec![f32::NAN, 0.1, 0.2, f32::INFINITY, 0.3, 0.4, f32::NEG_INFINITY, 0.5],
        )
        .unwrap();
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(
                score_quantile(&dirty, q),
                score_quantile(&clean, q),
                "q={q}: NaN/inf must not perturb the quantile"
            );
        }
        // All-NaN input degrades to the 0.0 fallback instead of indexing
        // an arbitrarily ordered sample.
        let all_nan = Matrix::from_vec(1, 2, vec![f32::NAN, f32::NAN]).unwrap();
        assert_eq!(score_quantile(&all_nan, 0.9), 0.0);
        assert_eq!(score_quantile(&Matrix::zeros(0, 0), 0.5), 0.0);
    }

    /// A matcher probe that records the dimensions its `aux_bytes` was
    /// asked about, so tests can pin the padded-dimension accounting.
    struct DimProbe {
        asked: std::sync::Mutex<Vec<(usize, usize)>>,
    }

    impl Matcher for DimProbe {
        fn name(&self) -> &'static str {
            "DimProbe"
        }

        fn run(&self, scores: &Matrix, _ctx: &MatchContext) -> Matching {
            Matching::new(vec![None; scores.rows()])
        }

        fn aux_bytes(&self, n_s: usize, n_t: usize) -> usize {
            self.asked.lock().unwrap().push((n_s, n_t));
            n_s * n_t
        }
    }

    #[test]
    fn padded_pipeline_accounts_matcher_memory_at_padded_dims() {
        // 3 sources, 2 targets: padding squares the matrix to 3 x 3, and
        // the matcher's memory estimate must be asked about 3 x 3, not the
        // unpadded 3 x 2 it never sees.
        let s = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.4, 0.4]).unwrap();
        let t = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let probe = DimProbe {
            asked: std::sync::Mutex::new(Vec::new()),
        };
        let p = MatchPipeline::new(SimilarityMetric::Cosine, Box::new(NoOp), Box::new(probe))
            .with_dummies(0.75);
        let r = p.execute(&s, &t, &MatchContext::default());
        // Downcast-free readback: the probe is owned by the pipeline, so
        // re-derive expectations from the report instead. sim matrix 3x2
        // f32 = 24 bytes, matcher 3*3 = 9, pad buffer 3*3*4 = 36.
        assert_eq!(r.peak_aux_bytes, 24 + 9 + 36);

        // Unpadded comparison: same matcher estimate at true dims (3*2=6),
        // no pad buffer — strictly less than the padded report.
        let probe2 = DimProbe {
            asked: std::sync::Mutex::new(Vec::new()),
        };
        let p2 = MatchPipeline::new(SimilarityMetric::Cosine, Box::new(NoOp), Box::new(probe2));
        let r2 = p2.execute(&s, &t, &MatchContext::default());
        assert_eq!(r2.peak_aux_bytes, 24 + 6);
        assert!(r.peak_aux_bytes > r2.peak_aux_bytes);
    }

    #[test]
    fn execution_report_is_a_view_of_the_trace() {
        use entmatcher_support::telemetry;

        let _guard = crate::telemetry_test_lock();
        let (s, t) = toy_embeddings();
        let p = MatchPipeline::new(
            SimilarityMetric::Cosine,
            Box::new(Csls::default()),
            Box::new(Greedy),
        );
        telemetry::set_enabled(true);
        let r = p.execute(&s, &t, &MatchContext::default());
        let trace = telemetry::snapshot();
        telemetry::set_enabled(false);

        // Other tests may run concurrently with telemetry enabled, so
        // locate *our* spans by their exact recorded durations.
        let pipeline = trace
            .spans_named("pipeline")
            .find(|sp| sp.duration_ns == r.elapsed.as_nanos() as u64)
            .expect("pipeline span recorded");
        let stages = [
            ("similarity", r.similarity_time),
            ("optimize", r.optimize_time),
            ("match", r.match_time),
        ];
        for (name, want) in stages {
            let span = trace
                .spans_named(name)
                .find(|sp| sp.parent == Some(pipeline.id))
                .unwrap_or_else(|| panic!("{name} span under pipeline"));
            assert_eq!(
                span.duration_ns,
                want.as_nanos() as u64,
                "{name} report field must equal its span"
            );
            assert!(span.duration_ns <= pipeline.duration_ns);
        }
        // Stage byte attributions sum to the report's peak estimate.
        let byte_sum: u64 = trace
            .children(pipeline.id)
            .iter()
            .map(|sp| sp.bytes)
            .sum();
        assert_eq!(byte_sum, r.peak_aux_bytes as u64);
        // The stages run on the pipeline's thread, so all four spans share
        // one real thread lane (lanes are 1-based) — the invariant behind
        // the Chrome export's per-thread rows.
        assert!(pipeline.tid >= 1, "pipeline span missing thread lane");
        assert!(trace
            .children(pipeline.id)
            .iter()
            .all(|sp| sp.tid == pipeline.tid));
    }

    #[test]
    fn candidate_strategies_agree_with_exact_on_easy_data() {
        use entmatcher_data::{clustered_embeddings, EmbeddingSpec};

        let pair = clustered_embeddings(&EmbeddingSpec {
            entities: 150,
            dim: 16,
            clusters: 10,
            spread: 0.25,
            noise: 0.05,
            seed: 31,
        });
        // NoOp optimizer so disagreement measures candidate recall alone:
        // CSLS's neighbourhood statistics shift under densified fill and
        // would conflate rescoring drift with missed candidates.
        let build = |strategy: CandidateStrategy| {
            MatchPipeline::new(SimilarityMetric::Cosine, Box::new(NoOp), Box::new(Greedy))
                .with_candidates(strategy, 16)
        };
        let exact = build(CandidateStrategy::Exact)
            .execute(&pair.source, &pair.target, &MatchContext::default());
        for strategy in [
            CandidateStrategy::Lsh(LshBlocker {
                bits: 8,
                tables: 8,
                seed: 41,
            }),
            CandidateStrategy::Ivf(IvfParams::default()),
        ] {
            let name = strategy.name();
            let approx =
                build(strategy).execute(&pair.source, &pair.target, &MatchContext::default());
            let agree = exact
                .matching
                .assignment()
                .iter()
                .zip(approx.matching.assignment())
                .filter(|(a, b)| a == b)
                .count();
            assert!(
                agree >= 135,
                "{name} strategy agrees with exact on only {agree}/150 sources"
            );
        }
    }

    #[test]
    fn quantized_precisions_track_f32_decisions() {
        use entmatcher_data::{clustered_embeddings, EmbeddingSpec};

        let pair = clustered_embeddings(&EmbeddingSpec {
            entities: 150,
            dim: 16,
            clusters: 10,
            spread: 0.25,
            noise: 0.05,
            seed: 77,
        });
        let build = |precision| {
            MatchPipeline::new(SimilarityMetric::Cosine, Box::new(NoOp), Box::new(Greedy))
                .with_precision(precision)
        };
        let f32_run = build(Precision::F32)
            .execute(&pair.source, &pair.target, &MatchContext::default());
        for precision in [Precision::F16, Precision::Int8] {
            let q = build(precision).execute(&pair.source, &pair.target, &MatchContext::default());
            let agree = f32_run
                .matching
                .assignment()
                .iter()
                .zip(q.matching.assignment())
                .filter(|(a, b)| a == b)
                .count();
            assert!(
                agree >= 145,
                "{} agrees with f32 on only {agree}/150 sources",
                precision.name()
            );
        }
    }

    #[test]
    fn describe_appends_non_f32_precision() {
        let p = MatchPipeline::new(SimilarityMetric::Cosine, Box::new(NoOp), Box::new(Greedy));
        assert_eq!(p.describe(), "cosine+none+Greedy");
        let p = p.with_precision(Precision::Int8);
        assert_eq!(p.describe(), "cosine+none+Greedy@int8");
    }

    #[test]
    fn quantized_similarity_emits_pack_span() {
        use entmatcher_support::telemetry;

        let _guard = crate::telemetry_test_lock();
        let (s, t) = toy_embeddings();
        let p = MatchPipeline::new(SimilarityMetric::Cosine, Box::new(NoOp), Box::new(Greedy))
            .with_precision(Precision::Int8);
        telemetry::set_enabled(true);
        let r = p.execute(&s, &t, &MatchContext::default());
        let trace = telemetry::snapshot();
        telemetry::set_enabled(false);

        let sim = trace
            .spans_named("similarity")
            .find(|sp| sp.duration_ns == r.similarity_time.as_nanos() as u64)
            .expect("similarity span recorded");
        assert!(
            trace
                .children(sim.id)
                .iter()
                .any(|sp| sp.name == "quant.pack"),
            "quant.pack span under similarity"
        );
        assert!(trace.counter("quant.packed_bytes").unwrap_or(0) > 0);
    }

    #[test]
    fn ivf_strategy_emits_probe_spans_under_similarity() {
        use entmatcher_data::{clustered_embeddings, EmbeddingSpec};
        use entmatcher_support::telemetry;

        let _guard = crate::telemetry_test_lock();
        let pair = clustered_embeddings(&EmbeddingSpec {
            entities: 80,
            dim: 16,
            clusters: 8,
            spread: 0.25,
            noise: 0.05,
            seed: 12,
        });
        let p = MatchPipeline::new(
            SimilarityMetric::Cosine,
            Box::new(NoOp),
            Box::new(Greedy),
        )
        .with_candidates(CandidateStrategy::Ivf(IvfParams::default()), 8);
        telemetry::set_enabled(true);
        let r = p.execute(&pair.source, &pair.target, &MatchContext::default());
        let trace = telemetry::snapshot();
        telemetry::set_enabled(false);

        let sim = trace
            .spans_named("similarity")
            .find(|sp| sp.duration_ns == r.similarity_time.as_nanos() as u64)
            .expect("similarity span recorded");
        let kids = trace.children(sim.id);
        assert!(
            kids.iter().any(|sp| sp.name == "ann.train"),
            "ann.train under similarity, got {kids:?}"
        );
        assert!(
            kids.iter().any(|sp| sp.name == "ann.probe"),
            "ann.probe under similarity, got {kids:?}"
        );
        assert!(trace.counter("ann.candidates").unwrap_or(0) > 0);
        assert!(trace.counter("pipeline.shortlist.candidates").unwrap_or(0) > 0);
    }

    #[test]
    fn padded_run_emits_pad_span_under_match() {
        use entmatcher_support::telemetry;

        let _guard = crate::telemetry_test_lock();
        let s = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.4, 0.4]).unwrap();
        let t = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let p = MatchPipeline::new(
            SimilarityMetric::Cosine,
            Box::new(NoOp),
            Box::new(Hungarian),
        )
        .with_dummies(0.75);
        telemetry::set_enabled(true);
        let r = p.execute(&s, &t, &MatchContext::default());
        let trace = telemetry::snapshot();
        telemetry::set_enabled(false);

        let match_span = trace
            .spans_named("match")
            .find(|sp| sp.duration_ns == r.match_time.as_nanos() as u64)
            .expect("match span recorded");
        let pads = trace.children(match_span.id);
        assert!(
            pads.iter().any(|sp| sp.name == "pad" && sp.bytes == 9 * 4),
            "pad child span with the padded-buffer bytes, got {pads:?}"
        );
    }
}
