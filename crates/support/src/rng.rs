//! Seeded, deterministic pseudo-random number generation.
//!
//! The generator is xoshiro256\*\* (Blackman & Vigna), seeded from a single
//! `u64` through a SplitMix64 expansion — the standard way to fill the
//! 256-bit state from a small seed without correlation artifacts. The API
//! mirrors the subset of `rand` 0.8 this workspace uses, so call sites only
//! change their `use` lines:
//!
//! ```
//! use entmatcher_support::rng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f32 = rng.gen();
//! let i = rng.gen_range(0..10usize);
//! assert!((0.0..1.0).contains(&x) && i < 10);
//! ```
//!
//! Determinism is a hard guarantee: a fixed seed yields a fixed sequence on
//! every platform (see the golden-value tests at the bottom of this file).

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used both for seed expansion and as a cheap secondary mixer by the
/// property-test harness.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construction from a small seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The xoshiro256\*\* generator. [`StdRng`] aliases this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The workspace's standard generator (an alias kept for `rand` API parity).
pub type StdRng = Xoshiro256StarStar;

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256StarStar { s }
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types producible uniformly by [`Rng::gen`] (the `rand` "standard"
/// distribution: floats in `[0, 1)`, integers over their full range).
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full single precision.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, bound)` by rejection sampling on the top bits, so
/// every bound is exactly uniform and the stream stays deterministic.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Widening-multiply trick (Lemire): map next_u64 into [0, bound) and
    // reject the biased sliver.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = (rng.next_u64() as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impls {
    ($($ty:ty),+) => {$(
        impl SampleRange for core::ops::Range<$ty> {
            type Output = $ty;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                // Two's-complement wrapping makes this span correct for
                // signed types as well.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $ty)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$ty> {
            type Output = $ty;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $ty)
            }
        }
    )+};
}

int_range_impls!(usize, u64, u32, u8, i64, i32);

macro_rules! float_range_impls {
    ($($ty:ty),+) => {$(
        impl SampleRange for core::ops::Range<$ty> {
            type Output = $ty;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: $ty = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )+};
}

float_range_impls!(f64, f32);

/// The generator interface, mirroring the used subset of `rand::Rng`.
pub trait Rng {
    /// The primitive output: the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of `T` ([0, 1) for floats, full range for ints).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample(self) < p
    }

    /// A standard normal sample (mean 0, unit variance) via Box–Muller.
    fn gen_normal(&mut self) -> f64
    where
        Self: Sized,
    {
        // Uniforms in (0, 1]: shift avoids ln(0).
        let u1 = 1.0 - f64::sample(self);
        let u2 = f64::sample(self);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Slice shuffling, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Golden values pin the exact output stream: any change to seeding or
    // the generator core is a breaking change to every seeded experiment.
    #[test]
    fn golden_sequence_seed_42() {
        let mut rng = StdRng::seed_from_u64(42);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            [
                0x1578_0B2E_0C2E_C716,
                0x6104_D986_6D11_3A7E,
                0xAE17_5332_39E4_99A1,
                0xECB8_AD47_03B3_60A1,
            ]
        );
        let mut other = StdRng::seed_from_u64(43);
        assert_ne!(first[0], other.next_u64());
    }

    #[test]
    fn golden_sequence_seed_0_matches_reference() {
        // xoshiro256** seeded through SplitMix64 from 0 — the construction
        // used by the reference implementations, so these two outputs are a
        // cross-check against the published algorithm, not just ourselves.
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0x99EC_5F36_CB75_F2B4);
        assert_eq!(rng.next_u64(), 0xBF6E_1F78_4956_452A);
    }

    #[test]
    fn golden_derived_draws() {
        // Pins the value-construction layer (floats, ranges) on top of the
        // raw stream.
        let mut rng = StdRng::seed_from_u64(42);
        assert_eq!(rng.gen::<f64>(), 0.083_862_971_059_882_16);
        assert_eq!(rng.gen::<f64>(), 0.378_980_250_662_668_61);
        let mut rng = StdRng::seed_from_u64(42);
        assert_eq!(rng.gen_range(0..100usize), 8);
        assert_eq!(rng.gen_range(0..100usize), 37);
        assert_eq!(rng.gen_range(0..=9usize), 6);
    }

    #[test]
    fn splitmix_reference_values() {
        // Published SplitMix64 test vector (state = 0).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            assert!(rng.gen_range(3..17usize) < 17);
            assert!(rng.gen_range(3..17usize) >= 3);
            let v = rng.gen_range(5..=5usize);
            assert_eq!(v, 5);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(0.5f32..0.75);
            assert!((0.5..0.75).contains(&g));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And a fixed seed shuffles identically.
        let mut w: Vec<usize> = (0..100).collect();
        w.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(v, w);
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} far from 1");
    }
}
