#![warn(missing_docs)]

//! **entmatcher** — matching knowledge graphs in entity embedding spaces.
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`graph`] — KG data model (triples, adjacency, alignments, TSV I/O);
//! * [`data`] — synthetic benchmark generators (DBP15K/SRPRS/DWY100K
//!   analogues, unmatchable and non-1-to-1 variants);
//! * [`embed`] — representation learning (GCN/RREA-style propagation
//!   encoders, name embeddings, fusion);
//! * [`core`] — the matching library itself: similarity metrics, score
//!   optimizers (CSLS, RInf, Sinkhorn), matchers (Greedy, Hungarian,
//!   Gale–Shapley, RL-style), composable via [`core::MatchPipeline`];
//! * [`eval`] — metrics, analysis, and the experiment grid runner;
//! * [`linalg`] — the dense matrix kernels underneath everything;
//! * [`support`] — the zero-dependency toolkit the workspace stands on:
//!   seeded PRNG, JSON, property-testing and benchmark harnesses.
//!
//! # Quickstart
//!
//! ```
//! use entmatcher::prelude::*;
//!
//! // 1. A benchmark KG pair (tiny synthetic DBP15K analogue).
//! let spec = entmatcher::data::benchmarks::dbp15k("D-Z", 0.01);
//! let pair = entmatcher::data::generate_pair(&spec);
//!
//! // 2. Representation learning on the pair's seed links.
//! let embeddings = RreaEncoder::default().encode(&pair);
//!
//! // 3. Matching in the embedding space with a named preset.
//! let task = MatchTask::from_pair(&pair);
//! let (src, tgt) = task.candidate_embeddings(&embeddings);
//! let report = AlgorithmPreset::Csls.build().execute(&src, &tgt, &MatchContext::default());
//!
//! // 4. Evaluation against the gold test links.
//! let links = task.matching_to_links(&report.matching);
//! let scores = evaluate_links(&links, &task.gold);
//! assert!(scores.f1 > 0.0);
//! ```

pub use entmatcher_core as core;
pub use entmatcher_data as data;
pub use entmatcher_embed as embed;
pub use entmatcher_eval as eval;
pub use entmatcher_graph as graph;
pub use entmatcher_linalg as linalg;
pub use entmatcher_support as support;

/// The most common imports in one place.
pub mod prelude {
    pub use entmatcher_core::{
        AlgorithmPreset, Csls, Greedy, Hungarian, MatchContext, MatchPipeline, Matcher, Matching,
        RInf, RlMatcher, ScoreOptimizer, SimilarityMetric, Sinkhorn, StableMarriage,
    };
    pub use entmatcher_data::{generate_pair, PairSpec};
    pub use entmatcher_embed::{Encoder, GcnEncoder, NameEncoder, RreaEncoder, UnifiedEmbeddings};
    pub use entmatcher_eval::{evaluate_links, AlignmentScores, EncoderKind, MatchTask};
    pub use entmatcher_graph::{AlignmentSet, EntityId, KgBuilder, KgPair, KnowledgeGraph, Link};
    pub use entmatcher_linalg::Matrix;
}
