//! Global-pool sizing via `ENTMATCHER_THREADS`.
//!
//! This lives in its own integration-test binary on purpose: the global
//! pool is created lazily at first use and its width is read from the
//! environment exactly once, so the variable must be set before anything
//! in the process touches the pool. Keep this file to a single test.

use entmatcher_support::pool;
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn entmatcher_threads_sizes_the_global_pool() {
    // Safe here: no other thread exists yet in this test binary, and the
    // global pool has not been initialized.
    std::env::set_var("ENTMATCHER_THREADS", "3");
    assert_eq!(pool::configured_width(), 3);
    let pool = pool::global();
    assert_eq!(pool.width(), 3);

    // The env-sized pool actually executes work (including nested jobs).
    let total = AtomicUsize::new(0);
    pool.run(7, &|_| {
        pool.run(5, &|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
    });
    assert_eq!(total.load(Ordering::Relaxed), 35);
    assert!(pool.stats().tasks >= 35);

    // Garbage values fall back to available parallelism (>= 1).
    std::env::set_var("ENTMATCHER_THREADS", "zero");
    assert!(pool::configured_width() >= 1);
    std::env::set_var("ENTMATCHER_THREADS", "0");
    assert!(pool::configured_width() >= 1);
    std::env::remove_var("ENTMATCHER_THREADS");
}
