#!/usr/bin/env sh
# Workspace verification: offline release build + the full test suite.
#
# `--offline` is the point, not an optimization: this workspace has a
# zero-external-dependency policy (see DESIGN.md §5), so building must
# never touch the network. If this script fails with a resolver error,
# someone added an external dependency — remove it or port the needed
# functionality into `crates/support`.
#
# ENTMATCHER_BENCH_QUICK=1 makes the `harness = false` bench binaries run
# each benchmark body exactly once if a runner invokes them, keeping the
# whole script fast while still exercising every bench target's code.
set -eu

cd "$(dirname "$0")/.."

export ENTMATCHER_BENCH_QUICK=1

cargo build --release --offline --workspace --benches
cargo test -q --offline --workspace
