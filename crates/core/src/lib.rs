#![warn(missing_docs)]

//! **EntMatcher-RS** — algorithms for matching knowledge graphs in entity
//! embedding spaces.
//!
//! This is the paper's primary artifact: a loosely-coupled library whose
//! three modules mirror the architecture of Figure 3 —
//!
//! 1. [`similarity`] — pairwise score computation from unified embeddings
//!    (cosine / Euclidean / Manhattan);
//! 2. [`score`] — score optimizers refining the raw similarity matrix:
//!    none (DInf), CSLS, RInf (+ the RInf-wr / RInf-pb scalability
//!    variants), and the Sinkhorn operation;
//! 3. [`matching`] — matchers turning a score matrix into aligned pairs:
//!    Greedy, the Hungarian algorithm (Jonker–Volgenant flavour),
//!    Gale–Shapley stable matching, and the RL-style sequence-decision
//!    matcher with coherence and exclusiveness rewards.
//!
//! Any metric x optimizer x matcher combination composes through
//! [`MatchPipeline`]; the named presets of the paper's Table 2 are exposed
//! as [`AlgorithmPreset`]s:
//!
//! ```
//! use entmatcher_core::{AlgorithmPreset, MatchContext};
//! use entmatcher_linalg::Matrix;
//!
//! // Toy unified embeddings: 3 source rows, 3 target rows, identical.
//! let emb = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.7, 0.7]).unwrap();
//! let pipeline = AlgorithmPreset::DInf.build();
//! let result = pipeline.execute(&emb, &emb, &MatchContext::default());
//! assert_eq!(result.matching.assignment(), &[Some(0), Some(1), Some(2)]);
//! ```

pub mod ann;
pub mod blocking;
pub mod dummy;
pub mod error;
pub mod matching;
pub mod pipeline;
pub mod score;
pub mod serve;
pub mod similarity;
pub mod spec;
pub mod streaming;

pub use ann::{
    CandidateSource, ExactStreaming, IvfCandidates, IvfIndex, IvfParams, LshCandidates, Shortlist,
};
pub use blocking::LshBlocker;
pub use error::CoreError;
pub use matching::multi::{MultiMatching, ProbabilisticMatcher, ThresholdMatcher};
pub use matching::{greedy::Greedy, hungarian::Hungarian, rl::RlMatcher, stable::StableMarriage};
pub use matching::{MatchContext, Matcher, Matching};
pub use pipeline::{CandidateStrategy, ExecutionReport, MatchPipeline};
pub use score::csls::Gid;
pub use serve::{MatchService, Query, ServeConfig, TargetIndex, TopKResult};
pub use score::{
    csls::Csls, rinf::RInf, rinf::RInfProgressive, sinkhorn::Sinkhorn, NoOp, ScoreOptimizer,
};
pub use similarity::{similarity_matrix, SimilarityMetric};
pub use spec::{AlgorithmPreset, AlgorithmSpec, Direction};
pub use streaming::{
    streaming_csls, streaming_csls_at, streaming_csls_snapshot, streaming_greedy,
    streaming_greedy_at, streaming_greedy_snapshot,
};

/// Result alias for fallible core operations.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Serializes tests that toggle the process-global telemetry switch, so
/// concurrent tests in this binary can't disable each other's recording.
#[cfg(test)]
pub(crate) fn telemetry_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
