//! Oracle-backed recall tests for the approximate candidate sources.
//!
//! The blocked-exact fused top-k pass (`linalg::fused_topk`) is the
//! ground-truth oracle: every property generates a clustered embedding
//! pair, computes the exact top-10 per source, and measures how much of it
//! the approximate structure recovers.
//!
//! Enforced floors (documented in DESIGN.md "Candidate generation"):
//!
//! * IVF at `nlist = 16`: recall@10 >= 0.10 at `nprobe = 1`, >= 0.45 at
//!   `nprobe = 4`, >= 0.70 at `nprobe = 8`, and bitwise equality at
//!   `nprobe = nlist`. Recall is also monotone in `nprobe` (probed-list
//!   sets are nested by construction).
//! * LSH at `bits = 8`: candidate-set recall@10 >= 0.5 at `tables = 6`,
//!   and monotone in the table count (tables are prefixes of one seeded
//!   hyperplane stream, so candidate sets are nested).

use entmatcher_core::{IvfIndex, IvfParams, LshBlocker};
use entmatcher_data::{clustered_embeddings, EmbeddingSpec};
use entmatcher_linalg::{fused_topk, Matrix};
use entmatcher_support::prop::{check, Config, Gen};
use entmatcher_support::rng::Rng;
use entmatcher_support::{prop_assert, prop_assert_eq};

const K: usize = 10;

fn cfg() -> Config {
    // Each case trains an index; keep the count moderate.
    Config::with_cases(24)
}

/// A generated pair: target side is indexed, source side queries it.
fn gen_pair(g: &mut Gen) -> (Matrix, Matrix) {
    let entities = 100 + g.len_in(0, 200);
    let pair = clustered_embeddings(&EmbeddingSpec {
        entities,
        dim: 16,
        clusters: 8,
        spread: 0.25,
        noise: 0.05,
        seed: g.gen_range(0..u64::MAX / 2),
    });
    (pair.source, pair.target)
}

/// Fraction of oracle top-k pairs present in the approximate lists.
fn recall(approx: &[Vec<(u32, f32)>], oracle: &[Vec<(u32, f32)>]) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for (a, e) in approx.iter().zip(oracle) {
        let got: std::collections::HashSet<u32> = a.iter().map(|&(i, _)| i).collect();
        total += e.len();
        hit += e.iter().filter(|&&(i, _)| got.contains(&i)).count();
    }
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

/// Candidate-set recall: fraction of oracle top-k ids present in the raw
/// (unscored) candidate lists.
fn candidate_recall(blocks: &[Vec<u32>], oracle: &[Vec<(u32, f32)>]) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for (cands, e) in blocks.iter().zip(oracle) {
        total += e.len();
        hit += e
            .iter()
            .filter(|&&(i, _)| cands.binary_search(&i).is_ok())
            .count();
    }
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

#[test]
fn ivf_full_probe_width_reproduces_exact_results_bitwise() {
    check("ivf_full_probe_width_reproduces_exact_results_bitwise", cfg(), |g| {
        let (queries, target) = gen_pair(g);
        let nlist = 1 + g.len_in(0, 24);
        let index = IvfIndex::build(
            &target,
            &IvfParams {
                nlist,
                ..IvfParams::default()
            },
        );
        let approx = index.search(&queries, K, index.nlist());
        let exact = fused_topk(&queries, &target, K).unwrap();
        // Bitwise: same ids, same scores, same order — not approximate
        // equality. The index merely partitions the same fused kernel.
        prop_assert_eq!(approx, exact);
        Ok(())
    });
}

#[test]
fn ivf_recall_stays_above_per_nprobe_floors() {
    // (nprobe, floor) at nlist = 16. Monotonicity is asserted separately,
    // so each floor only needs to hold at its own width.
    const FLOORS: &[(usize, f64)] = &[(1, 0.10), (4, 0.45), (8, 0.70)];

    check("ivf_recall_stays_above_per_nprobe_floors", cfg(), |g| {
        let (queries, target) = gen_pair(g);
        let index = IvfIndex::build(
            &target,
            &IvfParams {
                nlist: 16,
                ..IvfParams::default()
            },
        );
        let exact = fused_topk(&queries, &target, K).unwrap();
        let mut prev = 0.0f64;
        for nprobe in 1..=index.nlist() {
            let r = recall(&index.search(&queries, K, nprobe), &exact);
            prop_assert!(
                r + 1e-12 >= prev,
                "recall must be monotone in nprobe: {r:.3} at {nprobe} after {prev:.3}"
            );
            prev = r;
            if let Some(&(_, floor)) = FLOORS.iter().find(|&&(p, _)| p == nprobe) {
                prop_assert!(
                    r >= floor,
                    "recall@{K} = {r:.3} below floor {floor} at nprobe = {nprobe}"
                );
            }
        }
        prop_assert!(
            (prev - 1.0).abs() < 1e-12,
            "full probe width must have recall 1.0, got {prev:.3}"
        );
        Ok(())
    });
}

#[test]
fn lsh_candidate_recall_over_bits_tables_grid() {
    check("lsh_candidate_recall_over_bits_tables_grid", cfg(), |g| {
        let (queries, target) = gen_pair(g);
        let exact = fused_topk(&queries, &target, K).unwrap();
        let seed = g.gen_range(0..u64::MAX / 2);

        // More tables never lose candidates (hyperplane streams are
        // prefixes of one another for a fixed seed), so recall is
        // monotone in the table count at fixed bits.
        for bits in [8usize, 10] {
            let mut prev = 0.0f64;
            for tables in [1usize, 2, 4, 6] {
                let blocker = LshBlocker { bits, tables, seed };
                let r = candidate_recall(&blocker.block(&queries, &target), &exact);
                prop_assert!(
                    r + 1e-12 >= prev,
                    "bits={bits}: recall {r:.3} at {tables} tables after {prev:.3}"
                );
                prev = r;
            }
        }

        // Floor at the harness's reference setting.
        let blocker = LshBlocker {
            bits: 8,
            tables: 6,
            seed,
        };
        let r = candidate_recall(&blocker.block(&queries, &target), &exact);
        prop_assert!(
            r >= 0.5,
            "candidate recall@{K} = {r:.3} below 0.5 at bits=8 tables=6"
        );
        Ok(())
    });
}

#[test]
fn degenerate_inputs_do_not_panic_in_either_structure() {
    let empty = Matrix::zeros(0, 8);
    let one = Matrix::from_fn(1, 8, |_, c| (c as f32 + 1.0) / 8.0);
    let blocker = LshBlocker::default();

    // LSH: n == 0 / n == 1 on each side, and a forced empty-bucket case
    // (opposite vectors under 1-table blocking).
    assert!(blocker.block(&empty, &one).is_empty());
    assert_eq!(blocker.block(&one, &empty), vec![Vec::<u32>::new()]);
    assert_eq!(blocker.block(&one, &one).len(), 1);
    let plus = Matrix::from_vec(1, 2, vec![1.0, 1.0]).unwrap();
    let minus = Matrix::from_vec(1, 2, vec![-1.0, -1.0]).unwrap();
    let opposed = LshBlocker {
        bits: 8,
        tables: 1,
        seed: 2,
    };
    assert_eq!(opposed.block(&plus, &minus), vec![Vec::<u32>::new()]);

    // IVF: empty and single-row indexes, zero queries, k = 0.
    let index = IvfIndex::build(&empty, &IvfParams::default());
    assert_eq!(index.search(&one, K, 4), vec![Vec::new()]);
    let index = IvfIndex::build(&one, &IvfParams::default());
    assert_eq!(index.search(&empty, K, 4), Vec::<Vec<(u32, f32)>>::new());
    assert_eq!(index.search(&one, 0, 4), vec![Vec::new()]);
    assert_eq!(index.search(&one, K, 4).len(), 1);
}
