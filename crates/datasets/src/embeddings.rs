//! ANN-scale synthetic embedding pairs.
//!
//! The graph-based generators in this crate top out around DWY100K scale
//! once materialization and encoding are included; the ANN benchmarks need
//! *embedding* pairs at 100k+ entities without paying for graph synthesis.
//! This module samples them directly in embedding space: `clusters` latent
//! centers, each entity drawn as `center + noise`, and two independently
//! perturbed views of every entity (source and target). The gold alignment
//! is the identity `i <-> i`, mirroring the unified embedding space the
//! paper's matching stage operates in, and the cluster structure is what a
//! coarse quantizer (IVF k-means) is expected to discover.
//!
//! Rows are L2-normalized, so dot products are cosine similarities and the
//! pair can feed the fused similarity kernels directly. Everything is
//! deterministic given the spec's seed.

use entmatcher_linalg::{normalize_rows_l2, Matrix};
use entmatcher_support::rng::{Rng, SeedableRng, StdRng};

/// Parameters for [`clustered_embeddings`].
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingSpec {
    /// Entities per side (gold alignment is identity, so both sides share
    /// this count).
    pub entities: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Latent cluster count (clamped to `entities`; 0 means every entity
    /// is its own cluster).
    pub clusters: usize,
    /// Per-coordinate half-width of the within-cluster offset that
    /// separates entities sharing a cluster. Must exceed `noise` for the
    /// identity gold pair to be each entity's nearest cross-view
    /// neighbour (siblings differ by `spread`, views by `noise`).
    pub spread: f32,
    /// Per-coordinate uniform noise half-width added independently to each
    /// view. Smaller values make the two views of an entity closer.
    pub noise: f32,
    /// PRNG seed; the generator is a pure function of the spec.
    pub seed: u64,
}

impl Default for EmbeddingSpec {
    fn default() -> Self {
        EmbeddingSpec {
            entities: 1000,
            dim: 32,
            clusters: 32,
            spread: 0.25,
            noise: 0.05,
            seed: 17,
        }
    }
}

/// A generated embedding pair with identity gold alignment.
pub struct EmbeddingPair {
    /// Source-side embeddings, `entities x dim`, rows unit-norm.
    pub source: Matrix,
    /// Target-side embeddings, same shape; row `i` is the same latent
    /// entity as source row `i`.
    pub target: Matrix,
    /// Latent cluster label of each entity (shared by both views).
    pub labels: Vec<u32>,
}

/// Samples a clustered embedding pair per `spec`.
pub fn clustered_embeddings(spec: &EmbeddingSpec) -> EmbeddingPair {
    let n = spec.entities;
    let d = spec.dim;
    let clusters = if spec.clusters == 0 {
        n
    } else {
        spec.clusters.min(n.max(1))
    };
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let centers = Matrix::from_fn(clusters, d, |_, _| rng.gen::<f32>() - 0.5);
    let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..clusters) as u32).collect();
    // The latent point of each entity is its cluster center plus a
    // `spread`-sized offset (what distinguishes it from same-cluster
    // siblings); each view then perturbs the latent point by the smaller
    // `noise`, so an entity's nearest cross-view neighbour is itself.
    let mut latent = Matrix::zeros(n, d);
    for (r, &label) in labels.iter().enumerate() {
        let row = latent.row_mut(r);
        row.copy_from_slice(centers.row(label as usize));
        for v in row.iter_mut() {
            *v += (rng.gen::<f32>() - 0.5) * spec.spread;
        }
    }
    let view = |rng: &mut StdRng| {
        let mut m = latent.clone();
        for r in 0..n {
            for v in m.row_mut(r) {
                *v += (rng.gen::<f32>() - 0.5) * spec.noise;
            }
        }
        normalize_rows_l2(&mut m);
        m
    };
    let source = view(&mut rng);
    let target = view(&mut rng);
    EmbeddingPair {
        source,
        target,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_normalized() {
        let spec = EmbeddingSpec {
            entities: 200,
            dim: 16,
            clusters: 8,
            spread: 0.2,
            noise: 0.05,
            seed: 3,
        };
        let a = clustered_embeddings(&spec);
        let b = clustered_embeddings(&spec);
        assert_eq!(a.source.as_slice(), b.source.as_slice());
        assert_eq!(a.target.as_slice(), b.target.as_slice());
        assert_eq!(a.labels, b.labels);
        for r in 0..200 {
            let norm: f32 = a.source.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn views_of_same_entity_are_close() {
        let pair = clustered_embeddings(&EmbeddingSpec {
            entities: 100,
            dim: 32,
            clusters: 10,
            spread: 0.2,
            noise: 0.05,
            seed: 5,
        });
        for r in 0..100 {
            let dot: f32 = pair
                .source
                .row(r)
                .iter()
                .zip(pair.target.row(r))
                .map(|(a, b)| a * b)
                .sum();
            assert!(dot > 0.9, "row {r} cross-view similarity {dot}");
        }
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        for entities in [0usize, 1, 2] {
            let pair = clustered_embeddings(&EmbeddingSpec {
                entities,
                dim: 8,
                clusters: 4,
                spread: 0.2,
                noise: 0.1,
                seed: 1,
            });
            assert_eq!(pair.source.rows(), entities);
            assert_eq!(pair.target.rows(), entities);
            assert_eq!(pair.labels.len(), entities);
        }
    }
}
