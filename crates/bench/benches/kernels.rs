//! Similarity-kernel benchmark: naive vs blocked GEMM (SIMD and scalar
//! micro-kernels) vs fused top-k, plus pool-vs-spawn dispatch overhead.
//!
//! Unlike the wall-clock microbenches, this target emits a machine-readable
//! artifact — `BENCH_kernels.json` — recording GFLOP/s and wall time for
//! every (kernel, n, d) configuration, so the perf trajectory of the
//! similarity hot path is tracked in-repo. The `blocked` rows use the
//! runtime-dispatched micro-kernel (AVX2 where available); the
//! `blocked_scalar` rows force the scalar reference kernel, so the pair is
//! the in-repo simd-vs-scalar comparison. The `blocked_f16` /
//! `blocked_int8` rows run the dequantize-fused kernels (pack at the
//! reduced precision + multiply, matching `blocked`'s repack-per-call
//! semantics) — the quantized-storage throughput comparison. The `par_pool`/`par_spawn` rows
//! run the same many-small-calls row sweep through the persistent
//! work-stealing pool and through per-call `thread::scope` spawning — the
//! dispatch-overhead comparison that motivated the pool. The JSON is
//! self-checked after writing: the run fails if it does not parse back or
//! if the naive / blocked / blocked_scalar entries are missing.
//!
//! Modes:
//! * default — 2k and 10k entities, dims 64/128/300 (dense kernels at 2k,
//!   all kernels at 10k/d=128);
//! * `--full` — adds a 30k-entity fused-only configuration (the dense
//!   output matrix alone would be 3.6 GB, which is exactly the point of
//!   the fused kernel);
//! * `ENTMATCHER_BENCH_QUICK=1` / `--test` / `--quick` — CI smoke: one
//!   tiny configuration, still exercising measurement, JSON write and
//!   self-check.
//!
//! Output path: `ENTMATCHER_KERNEL_BENCH_OUT` if set; otherwise
//! `BENCH_kernels.json` in the workspace root (quick mode defaults into
//! the temp dir so `cargo test` runs do not dirty the tree).

use entmatcher_linalg::parallel::{self, par_row_chunks_mut};
use entmatcher_linalg::{
    fused_topk, matmul_blocked, matmul_blocked_packed, matmul_blocked_with, matmul_naive, Matrix,
    Precision, QuantPackedB, SimdLevel,
};
use entmatcher_support::alloc::{self, CountingAlloc};
use entmatcher_support::json::{self, Json, Map, ToJson};
use entmatcher_support::rng::{Rng, SeedableRng, StdRng};
use std::hint::black_box;
use std::time::Instant;

// Backs the per-kernel measured heap column: the first repetition of every
// measurement runs under a counting-allocator scope.
#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// One measured configuration.
struct Entry {
    kernel: &'static str,
    m: usize,
    n: usize,
    d: usize,
    seconds: f64,
    gflops: f64,
    reps: u32,
    heap_peak_bytes: u64,
}

impl ToJson for Entry {
    fn to_json(&self) -> Json {
        let mut map = Map::new();
        map.insert("kernel", self.kernel);
        map.insert("m", self.m);
        map.insert("n", self.n);
        map.insert("d", self.d);
        map.insert("seconds", self.seconds);
        map.insert("gflops", self.gflops);
        map.insert("reps", self.reps);
        map.insert("heap_peak_bytes", self.heap_peak_bytes);
        Json::Obj(map)
    }
}

fn random_embeddings(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, d, |_, _| rng.gen::<f32>() - 0.5)
}

/// Times `body` with adaptive repetitions: at least one rep, and more
/// (up to `max_reps`) until the measurement exceeds ~0.3 s, so tiny
/// configurations are not noise-dominated while 10k+ ones run once.
/// The first repetition runs under a counting-allocator scope so every
/// entry also records its measured peak heap (the counting overhead on
/// that single rep is < 3% — see the memory bench's overhead row).
fn measure(tag: &str, max_reps: u32, mut body: impl FnMut()) -> (f64, u32, u64) {
    let mem_was = alloc::enabled();
    alloc::set_enabled(true);
    let start = Instant::now();
    let ((), heap_peak) = alloc::measure_peak(tag, &mut body);
    alloc::set_enabled(mem_was);
    let mut reps = 1u32;
    loop {
        let elapsed = start.elapsed().as_secs_f64();
        if reps >= max_reps || elapsed > 0.3 {
            return (elapsed / reps as f64, reps, heap_peak);
        }
        body();
        reps += 1;
    }
}

fn bench_config(
    entries: &mut Vec<Entry>,
    n: usize,
    d: usize,
    dense: bool,
    fused_k: usize,
    max_reps: u32,
) {
    let a = random_embeddings(n, d, 0xA5);
    let b = random_embeddings(n, d, 0x5A);
    // One multiply + one add per (i, j, d) triple.
    let flops = 2.0 * (n as f64) * (n as f64) * (d as f64);
    if dense {
        let (secs, reps, heap_peak_bytes) = measure("naive", max_reps, || {
            black_box(matmul_naive(&a, &b).unwrap());
        });
        entries.push(Entry {
            kernel: "naive",
            m: n,
            n,
            d,
            seconds: secs,
            gflops: flops / secs / 1e9,
            reps,
            heap_peak_bytes,
        });
        eprintln!("kernels: naive   n={n} d={d}: {secs:.3}s ({:.2} GFLOP/s)", flops / secs / 1e9);
        let (secs, reps, heap_peak_bytes) = measure("blocked", max_reps, || {
            black_box(matmul_blocked(&a, &b).unwrap());
        });
        entries.push(Entry {
            kernel: "blocked",
            m: n,
            n,
            d,
            seconds: secs,
            gflops: flops / secs / 1e9,
            reps,
            heap_peak_bytes,
        });
        eprintln!("kernels: blocked n={n} d={d}: {secs:.3}s ({:.2} GFLOP/s)", flops / secs / 1e9);
        let (secs, reps, heap_peak_bytes) = measure("blocked_scalar", max_reps, || {
            black_box(matmul_blocked_with(&a, &b, SimdLevel::Scalar).unwrap());
        });
        entries.push(Entry {
            kernel: "blocked_scalar",
            m: n,
            n,
            d,
            seconds: secs,
            gflops: flops / secs / 1e9,
            reps,
            heap_peak_bytes,
        });
        eprintln!("kernels: blocked_scalar n={n} d={d}: {secs:.3}s ({:.2} GFLOP/s)", flops / secs / 1e9);
        // Dequantize-fused kernels: pack-at-precision + multiply per rep,
        // mirroring `blocked` (which also repacks B every call) so the
        // GFLOP/s columns are directly comparable. The gate requires these
        // to hold >= 0.6x the f32 blocked throughput.
        for (kernel, precision) in [
            ("blocked_f16", Precision::F16),
            ("blocked_int8", Precision::Int8),
        ] {
            let (secs, reps, heap_peak_bytes) = measure(kernel, max_reps, || {
                let packed = QuantPackedB::pack(&b, precision);
                black_box(matmul_blocked_packed(&a, &packed).unwrap());
            });
            entries.push(Entry {
                kernel,
                m: n,
                n,
                d,
                seconds: secs,
                gflops: flops / secs / 1e9,
                reps,
                heap_peak_bytes,
            });
            eprintln!(
                "kernels: {kernel} n={n} d={d}: {secs:.3}s ({:.2} GFLOP/s)",
                flops / secs / 1e9
            );
        }
    }
    let (secs, reps, heap_peak_bytes) = measure("fused_topk", max_reps, || {
        black_box(fused_topk(&a, &b, fused_k).unwrap());
    });
    entries.push(Entry {
        kernel: "fused_topk",
        m: n,
        n,
        d,
        seconds: secs,
        gflops: flops / secs / 1e9,
        reps,
        heap_peak_bytes,
    });
    eprintln!("kernels: fused   n={n} d={d} k={fused_k}: {secs:.3}s ({:.2} GFLOP/s)", flops / secs / 1e9);
}

/// The row sweep both dispatch strategies execute: one multiply and one
/// add per element — trivially cheap on purpose, so the measurement is
/// dominated by how the work gets onto threads, not by the work itself.
fn sweep_rows(chunk: &mut [f32]) {
    for v in chunk.iter_mut() {
        *v = *v * 0.999 + 1e-6;
    }
}

/// Measures `calls` back-to-back parallel row sweeps dispatched through
/// the persistent pool (`par_pool`) and through a fresh `thread::scope`
/// with static contiguous chunks per call (`par_spawn` — the strategy the
/// pool replaced).
fn bench_pool_vs_spawn(
    entries: &mut Vec<Entry>,
    rows: usize,
    cols: usize,
    calls: usize,
    max_reps: u32,
) {
    let mut m = random_embeddings(rows, cols, 0x77);
    let flops = 2.0 * (rows * cols * calls) as f64;
    let (secs, reps, heap_peak_bytes) = measure("par_pool", max_reps, || {
        for _ in 0..calls {
            par_row_chunks_mut(m.as_mut_slice(), cols, |_, chunk| sweep_rows(chunk));
        }
        black_box(&mut m);
    });
    entries.push(Entry {
        kernel: "par_pool",
        m: rows,
        n: calls,
        d: cols,
        seconds: secs,
        gflops: flops / secs / 1e9,
        reps,
        heap_peak_bytes,
    });
    eprintln!(
        "kernels: par_pool  rows={rows} d={cols} calls={calls}: {secs:.4}s ({:.2} GFLOP/s)",
        flops / secs / 1e9
    );

    let workers = parallel::workers();
    let chunk_rows = rows.div_ceil(workers).max(1);
    let (secs, reps, heap_peak_bytes) = measure("par_spawn", max_reps, || {
        for _ in 0..calls {
            let data = m.as_mut_slice();
            std::thread::scope(|scope| {
                for chunk in data.chunks_mut(chunk_rows * cols) {
                    scope.spawn(|| sweep_rows(chunk));
                }
            });
        }
        black_box(&mut m);
    });
    entries.push(Entry {
        kernel: "par_spawn",
        m: rows,
        n: calls,
        d: cols,
        seconds: secs,
        gflops: flops / secs / 1e9,
        reps,
        heap_peak_bytes,
    });
    eprintln!(
        "kernels: par_spawn rows={rows} d={cols} calls={calls}: {secs:.4}s ({:.2} GFLOP/s)",
        flops / secs / 1e9
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = std::env::var("ENTMATCHER_BENCH_QUICK").ok().as_deref() == Some("1")
        || args.iter().any(|a| a == "--test" || a == "--quick");
    let full = args.iter().any(|a| a == "--full");

    let out_path = std::env::var("ENTMATCHER_KERNEL_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            if quick {
                std::env::temp_dir().join("BENCH_kernels.json")
            } else {
                // cargo runs bench targets with CWD = package dir; the
                // canonical artifact lives in the workspace root.
                let root = std::env::var("CARGO_MANIFEST_DIR")
                    .map(|p| {
                        std::path::Path::new(&p)
                            .ancestors()
                            .nth(2)
                            .expect("workspace root")
                            .to_path_buf()
                    })
                    .unwrap_or_else(|_| std::path::PathBuf::from("."));
                root.join("BENCH_kernels.json")
            }
        });

    let mut entries = Vec::new();
    if quick {
        bench_config(&mut entries, 256, 64, true, 10, 3);
        bench_pool_vs_spawn(&mut entries, 64, 64, 20, 2);
    } else {
        bench_config(&mut entries, 2000, 64, true, 10, 5);
        bench_config(&mut entries, 2000, 128, true, 10, 5);
        bench_config(&mut entries, 2000, 300, true, 10, 5);
        // The acceptance configuration: 10k x 10k, d = 128.
        bench_config(&mut entries, 10_000, 128, true, 10, 2);
        // Dispatch overhead: many cheap parallel calls on a small matrix.
        bench_pool_vs_spawn(&mut entries, 512, 128, 200, 3);
        if full {
            // Dense would materialize a 30k x 30k (3.6 GB) matrix; only
            // the fused kernel runs at this scale.
            bench_config(&mut entries, 30_000, 128, false, 10, 1);
        }
    }

    let mut doc = Map::new();
    doc.insert("schema", "entmatcher/kernel-bench/v1");
    doc.insert(
        "note",
        "flops = 2*m*n*d per pass; fused_topk includes the top-k reduction",
    );
    doc.insert("threads", std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    doc.insert("pool_width", parallel::workers());
    doc.insert("simd", entmatcher_linalg::simd::active().name());
    doc.insert("quick", quick);
    doc.insert("entries", &entries);
    let text = Json::Obj(doc).pretty();
    std::fs::write(&out_path, &text).expect("write BENCH_kernels.json");

    // Self-check: the artifact must parse back and contain both dense
    // kernels (the perf comparison the repo tracks) with finite numbers.
    let parsed = json::Json::parse(&text).expect("BENCH_kernels.json must parse");
    let entries_json = parsed
        .get("entries")
        .and_then(|e| e.as_array())
        .expect("entries array");
    for kernel in [
        "naive",
        "blocked",
        "blocked_scalar",
        "blocked_f16",
        "blocked_int8",
        "par_pool",
        "par_spawn",
    ] {
        let found = entries_json.iter().any(|e| {
            e.get("kernel").and_then(|k| k.as_str()) == Some(kernel)
                && e.get("gflops")
                    .and_then(|g| g.as_f64())
                    .is_some_and(|g| g.is_finite() && g > 0.0)
        });
        assert!(found, "self-check: no valid '{kernel}' entry in artifact");
    }
    println!(
        "kernels bench: wrote {} ({} entries, self-check ok)",
        out_path.display(),
        entries_json.len()
    );
}
