//! Entity-name embeddings via character n-gram hashing.
//!
//! The paper's N- settings (Table 5) embed entity names with pre-trained
//! word vectors; the property the matching study needs is simply that
//! *similar names land close together*. Hashed character n-grams deliver
//! exactly that, deterministically and without external model weights:
//! each name is the normalized bag of its character uni/bi/tri-grams
//! hashed into `dim` buckets.

use crate::encoder::{Encoder, UnifiedEmbeddings};
use entmatcher_graph::{KgPair, KnowledgeGraph};
use entmatcher_linalg::{normalize_rows_l2, Matrix};

/// Hashing name encoder.
#[derive(Debug, Clone)]
pub struct NameEncoder {
    /// Embedding dimensionality (number of hash buckets).
    pub dim: usize,
    /// Hash salt, so different instances decorrelate.
    pub salt: u64,
}

impl Default for NameEncoder {
    fn default() -> Self {
        NameEncoder {
            dim: 64,
            salt: 0x9A3E,
        }
    }
}

impl NameEncoder {
    /// Embeds one display name.
    pub fn embed_name(&self, name: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        let lower = name.to_lowercase();
        let bytes = lower.as_bytes();
        for n in 1..=3usize {
            // Longer n-grams are more distinctive; weight them up.
            let w = n as f32;
            if bytes.len() < n {
                continue;
            }
            for window in bytes.windows(n) {
                let h = fnv1a(window, self.salt.wrapping_add(n as u64));
                v[(h % self.dim as u64) as usize] += w;
            }
        }
        let norm = entmatcher_linalg::l2_norm(&v);
        if norm > f32::EPSILON {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }

    /// Embeds every entity of a KG, deriving display names from URIs with
    /// [`extract_display`]-style extraction: the substring after the last
    /// `/` and before the final `.suffix`.
    pub fn embed_kg(&self, kg: &KnowledgeGraph) -> Matrix {
        let mut m = Matrix::zeros(kg.num_entities(), self.dim);
        for (id, uri) in kg.entities() {
            let display = extract_display(uri);
            let v = self.embed_name(display);
            m.row_mut(id.index()).copy_from_slice(&v);
        }
        normalize_rows_l2(&mut m);
        m
    }
}

/// Extracts a display name from a URI-style symbol: text after the last
/// `/`, with a trailing `.uid` stripped.
pub fn extract_display(uri: &str) -> &str {
    let tail = uri.rsplit('/').next().unwrap_or(uri);
    match tail.rfind('.') {
        Some(dot) => &tail[..dot],
        None => tail,
    }
}

impl Encoder for NameEncoder {
    fn name(&self) -> &'static str {
        "Name"
    }

    fn encode(&self, pair: &KgPair) -> UnifiedEmbeddings {
        UnifiedEmbeddings {
            source: self.embed_kg(&pair.source),
            target: self.embed_kg(&pair.target),
        }
    }
}

fn fnv1a(bytes: &[u8], salt: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ salt.wrapping_mul(0x100_0000_01b3);
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use entmatcher_linalg::dot;

    #[test]
    fn identical_names_are_identical_vectors() {
        let enc = NameEncoder::default();
        assert_eq!(enc.embed_name("Tokyo"), enc.embed_name("Tokyo"));
        // Case-insensitive.
        assert_eq!(enc.embed_name("Tokyo"), enc.embed_name("tokyo"));
    }

    #[test]
    fn similar_names_beat_dissimilar_names() {
        let enc = NameEncoder::default();
        let a = enc.embed_name("Bergentina");
        let b = enc.embed_name("Bergentena"); // one substitution
        let c = enc.embed_name("Qoxuzvwyk");
        assert!(dot(&a, &b) > dot(&a, &c) + 0.2);
        assert!(dot(&a, &b) > 0.6);
    }

    #[test]
    fn vectors_are_unit_norm() {
        let enc = NameEncoder::default();
        let v = enc.embed_name("Karinatosh");
        assert!((entmatcher_linalg::l2_norm(&v) - 1.0).abs() < 1e-4);
        // Degenerate empty name stays zero instead of NaN.
        let z = enc.embed_name("");
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn display_extraction() {
        assert_eq!(extract_display("kg1/resource/Tokyo.17"), "Tokyo");
        assert_eq!(extract_display("no-slashes"), "no-slashes");
        assert_eq!(extract_display("a/b/St.Lucia.3"), "St.Lucia");
    }

    #[test]
    fn encode_pair_shapes() {
        use entmatcher_graph::{KgBuilder, KgPair, Link};
        let mut s = KgBuilder::new("s");
        s.add_triple("kg1/resource/Alpha.0", "r", "kg1/resource/Beta.1");
        let mut t = KgBuilder::new("t");
        t.add_triple("kg2/resource/Alpha.0", "r", "kg2/resource/Beta.1");
        let pair = KgPair::new(
            "p",
            s.build().unwrap(),
            t.build().unwrap(),
            vec![Link::new(
                entmatcher_graph::EntityId(0),
                entmatcher_graph::EntityId(0),
            )]
            .into_iter()
            .collect(),
            0,
        )
        .unwrap();
        let emb = NameEncoder::default().encode(&pair);
        emb.assert_consistent();
        // Identical display names across KGs embed identically.
        assert_eq!(emb.source.row(0), emb.target.row(0));
    }
}
