//! The `entmatcher` command-line binary (see the crate docs for usage).

use entmatcher_support::{json, telemetry};

// The counting allocator backs `ENTMATCHER_MEM=1` and `--mem-profile`.
// When neither is active it forwards straight to the system allocator
// after one relaxed atomic load, so plain runs pay nothing measurable.
#[global_allocator]
static ALLOCATOR: entmatcher_support::alloc::CountingAlloc =
    entmatcher_support::alloc::CountingAlloc;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = entmatcher_cli::run(&argv);
    // ENTMATCHER_TRACE=<path> dumps the whole process's trace at exit;
    // "1" (or any non-path switch value) only enables recording, leaving
    // export to `--trace FILE`. ENTMATCHER_TRACE_FORMAT=chrome switches
    // the dump to Chrome trace_event JSON.
    if let Some(dest) = telemetry::env_trace_destination() {
        if dest != "1" {
            let trace = telemetry::snapshot();
            let text = match telemetry::chrome::env_format() {
                telemetry::chrome::TraceFormat::Chrome => {
                    telemetry::chrome::to_chrome_string(&trace)
                }
                telemetry::chrome::TraceFormat::Native => json::to_string_pretty(&trace),
            };
            if let Err(e) = std::fs::write(&dest, text) {
                eprintln!("warning: could not write trace to {dest}: {e}");
            }
        }
    }
    dump_env_switches();
    match result {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// With `ENTMATCHER_ENV_DUMP=1`, prints every recognized `ENTMATCHER_*`
/// switch and its effective state to stderr at exit — the debugging aid
/// for "why did this run behave as if X were (not) set". The shared
/// convention, applied here and by every reader: unset, empty,
/// whitespace-only, and `0` all mean *disabled*.
fn dump_env_switches() {
    let dump = std::env::var("ENTMATCHER_ENV_DUMP")
        .map(|v| !matches!(v.trim(), "" | "0"))
        .unwrap_or(false);
    if !dump {
        return;
    }
    const SWITCHES: &[(&str, &str)] = &[
        ("ENTMATCHER_TRACE", "record telemetry; a path dumps it at exit"),
        ("ENTMATCHER_TRACE_FORMAT", "trace export format (chrome|native)"),
        ("ENTMATCHER_METRICS_ADDR", "serve /metrics on this address"),
        ("ENTMATCHER_METRICS_LINGER_MS", "keep /metrics up after the command"),
        ("ENTMATCHER_PROFILE_HZ", "--profile sampling rate"),
        ("ENTMATCHER_MEM", "counting allocator + measured heap spans"),
        ("ENTMATCHER_MEM_SAMPLE", "--mem-profile sampling rate (1/N)"),
        ("ENTMATCHER_SLOW_MS", "serve: slow-query log threshold (ms)"),
        ("ENTMATCHER_THREADS", "worker-pool size override"),
        ("ENTMATCHER_SIMD", "SIMD kernel dispatch (off disables)"),
        ("ENTMATCHER_ENV_DUMP", "this dump"),
    ];
    eprintln!("env: recognized switches (unset / empty / 0 = disabled):");
    for (name, what) in SWITCHES {
        let state = match std::env::var(name) {
            Ok(v) if matches!(v.trim(), "" | "0") => format!("{v:?} (disabled)"),
            Ok(v) => format!("{v:?}"),
            Err(_) => "<unset> (disabled)".to_owned(),
        };
        eprintln!("env:   {name}={state}  -- {what}");
    }
}
