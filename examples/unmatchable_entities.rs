//! The unmatchable setting (paper §5.1): some entities have no counterpart
//! in the other KG. Greedy algorithms match them anyway and pay precision;
//! Hungarian with dummy-node padding can abstain.
//!
//! Run with: `cargo run --example unmatchable_entities --release`

use entmatcher::prelude::*;

fn main() {
    // A DBP15K+ analogue: the D-Z pair extended with unmatchable entities
    // (asymmetric per side, so the candidate sets are unbalanced).
    let spec = entmatcher::data::benchmarks::dbp15k_plus("D-Z", 0.03);
    let pair = generate_pair(&spec);
    println!(
        "pair {}: {} test links, {} unmatchable sources, {} unmatchable targets",
        pair.id,
        pair.test_links().len(),
        pair.unmatchable_sources.len(),
        pair.unmatchable_targets.len()
    );

    let embeddings = RreaEncoder::default().encode(&pair);
    let task = MatchTask::from_pair(&pair);
    let (src, tgt) = task.candidate_embeddings(&embeddings);
    let ctx = MatchContext::default();

    // DInf blindly assigns every source, including the unmatchable ones.
    let dinf = AlgorithmPreset::DInf.build();
    let r = dinf.execute(&src, &tgt, &ctx);
    let scores = evaluate_links(&task.matching_to_links(&r.matching), &task.gold);
    println!(
        "DInf:                P = {:.3}  R = {:.3}  F1 = {:.3}  ({} predictions)",
        scores.precision, scores.recall, scores.f1, scores.predicted
    );

    // CSLS sharpens scores but still predicts for every source.
    let csls = AlgorithmPreset::Csls.build();
    let r = csls.execute(&src, &tgt, &ctx);
    let scores = evaluate_links(&task.matching_to_links(&r.matching), &task.gold);
    println!(
        "CSLS:                P = {:.3}  R = {:.3}  F1 = {:.3}  ({} predictions)",
        scores.precision, scores.recall, scores.f1, scores.predicted
    );

    // The paper's dummy-node protocol equalizes the sides; the 1-to-1
    // matchers then *abstain* on the surplus sources, recovering precision.
    for preset in [AlgorithmPreset::Hungarian, AlgorithmPreset::StableMarriage] {
        let pipeline = preset.build().with_dummies(0.9);
        let r = pipeline.execute(&src, &tgt, &ctx);
        let links = task.matching_to_links(&r.matching);
        let scores = evaluate_links(&links, &task.gold);
        let abstained = r.matching.len() - r.matching.matched_count();
        println!(
            "{:<4} (with dummies): P = {:.3}  R = {:.3}  F1 = {:.3}  ({} predictions, {} abstained)",
            preset.name(),
            scores.precision,
            scores.recall,
            scores.f1,
            scores.predicted,
            abstained
        );
    }
}
