#![warn(missing_docs)]

//! Reproduction harness: regenerates every table and figure of the paper.
//!
//! The `repro` binary (see `src/bin/repro.rs`) dispatches on experiment ids
//! (`table2` … `table8`, `fig4` … `fig7`, `dlem`, `appc`, `all`); this
//! library holds the shared machinery — configuration, dataset/embedding
//! caches, paper reference numbers — and one module per artifact family.

pub mod extensions;
pub mod figures;
pub mod paper;
pub mod tables;

use entmatcher_data::PairSpec;
use entmatcher_embed::UnifiedEmbeddings;
use entmatcher_eval::EncoderKind;
use entmatcher_graph::KgPair;
use std::collections::HashMap;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Scale factor for DBP15K / SRPRS / DBP15K+ / FB_DBP_MUL presets.
    /// 1.0 reproduces the paper's sizes; the default keeps the full grid
    /// within minutes on a laptop while preserving every shape conclusion.
    pub scale: f64,
    /// Scale factor for the large DWY100K presets.
    pub dwy_scale: f64,
    /// Directory for JSON result dumps and the generated experiment report.
    pub out_dir: std::path::PathBuf,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: 0.2,
            dwy_scale: 0.06,
            out_dir: std::path::PathBuf::from("bench_results"),
        }
    }
}

impl Config {
    /// Parses `--scale`, `--dwy-scale` and `--out` from CLI-style args,
    /// returning the config and the remaining positional arguments.
    pub fn from_args(args: &[String]) -> (Config, Vec<String>) {
        let mut cfg = Config::default();
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().expect("--scale requires a value");
                    cfg.scale = v.parse().expect("--scale must be a float");
                }
                "--dwy-scale" => {
                    let v = it.next().expect("--dwy-scale requires a value");
                    cfg.dwy_scale = v.parse().expect("--dwy-scale must be a float");
                }
                "--out" => {
                    let v = it.next().expect("--out requires a path");
                    cfg.out_dir = v.into();
                }
                other => rest.push(other.to_owned()),
            }
        }
        (cfg, rest)
    }
}

/// Caches generated pairs and encoded embeddings across experiments: a
/// `repro all` run touches the same datasets many times, and both
/// generation and encoding are the expensive parts.
#[derive(Default)]
pub struct Workbench {
    pairs: HashMap<String, KgPair>,
    embeddings: HashMap<String, UnifiedEmbeddings>,
}

impl Workbench {
    /// Creates an empty workbench.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates (or returns the cached) pair for a spec.
    pub fn pair(&mut self, spec: &PairSpec) -> &KgPair {
        let key = cache_key(spec);
        self.pairs
            .entry(key)
            .or_insert_with(|| entmatcher_data::generate_pair(spec))
    }

    /// Encodes (or returns the cached embeddings of) a pair.
    pub fn embeddings(
        &mut self,
        spec: &PairSpec,
        kind: EncoderKind,
    ) -> (&KgPair, &UnifiedEmbeddings) {
        let key = cache_key(spec);
        let ekey = format!("{key}::{:?}", kind);
        if !self.pairs.contains_key(&key) {
            self.pairs
                .insert(key.clone(), entmatcher_data::generate_pair(spec));
        }
        let pair = &self.pairs[&key];
        if !self.embeddings.contains_key(&ekey) {
            let emb = kind.encode(pair);
            self.embeddings.insert(ekey.clone(), emb);
        }
        (pair, &self.embeddings[&ekey])
    }

    /// Drops cached embeddings (datasets stay) — used between large
    /// experiments to bound memory.
    pub fn drop_embeddings(&mut self) {
        self.embeddings.clear();
    }
}

fn cache_key(spec: &PairSpec) -> String {
    format!("{}@{}x{}", spec.id, spec.classes, spec.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_parsing() {
        let args: Vec<String> = ["--scale", "0.5", "table4", "--out", "/tmp/x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (cfg, rest) = Config::from_args(&args);
        assert_eq!(cfg.scale, 0.5);
        assert_eq!(cfg.out_dir, std::path::PathBuf::from("/tmp/x"));
        assert_eq!(rest, vec!["table4"]);
    }

    #[test]
    fn workbench_caches_pairs() {
        let spec = PairSpec {
            classes: 50,
            latent_edges: 200,
            relations: 5,
            ..Default::default()
        };
        let mut wb = Workbench::new();
        let a = wb.pair(&spec).gold.len();
        let b = wb.pair(&spec).gold.len();
        assert_eq!(a, b);
        assert_eq!(wb.pairs.len(), 1);
    }

    #[test]
    fn workbench_caches_embeddings_per_kind() {
        let spec = PairSpec {
            classes: 40,
            latent_edges: 150,
            relations: 5,
            fillers_per_kg: 0,
            ..Default::default()
        };
        let mut wb = Workbench::new();
        let _ = wb.embeddings(&spec, EncoderKind::Name);
        let _ = wb.embeddings(&spec, EncoderKind::Name);
        let _ = wb.embeddings(&spec, EncoderKind::Gcn);
        assert_eq!(wb.embeddings.len(), 2);
        wb.drop_embeddings();
        assert!(wb.embeddings.is_empty());
    }
}
