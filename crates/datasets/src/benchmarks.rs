//! Benchmark presets mirroring the paper's Table 3.
//!
//! Each preset encodes the published statistics of one benchmark KG pair —
//! entity/relation/triple/link counts — plus difficulty knobs (degree
//! model, heterogeneity, name noise) chosen to reproduce the *regime* of
//! each corpus: DBP15K is dense with noisy cross-lingual names, SRPRS is
//! sparse with a real-life power-law degree distribution, DWY100K is large
//! and mono-lingual, DBP15K+ adds unmatchable entities, FB_DBP_MUL is
//! dominated by non-1-to-1 links.
//!
//! All presets accept a `scale` factor so the full grid runs on one
//! machine; `scale = 1.0` reproduces the paper's sizes.

use crate::spec::{DegreeModel, PairSpec};

/// Computes the latent edge budget needed for a target per-KG triple count,
/// inverting the view-retention formula (each view keeps `1 - h/2` of
/// latent edges) and subtracting expected filler/unmatchable attachments
/// (2 edges each on average).
fn latent_for(triples_per_kg: usize, extras_per_kg: usize, heterogeneity: f64) -> usize {
    let attach = extras_per_kg * 2;
    let structural = triples_per_kg.saturating_sub(attach).max(1);
    (structural as f64 / (1.0 - heterogeneity / 2.0)).round() as usize
}

/// DBP15K presets: cross-lingual DBpedia pairs (`"D-Z"`, `"D-J"`, `"D-F"`).
///
/// Full-scale stats per Table 3, e.g. D-Z: 38,960 entities, 3,024
/// relations, 165,556 triples, 15,000 links, average degree 4.2.
pub fn dbp15k(variant: &str, scale: f64) -> PairSpec {
    // (entities_total, relations_total, triples_total, name_noise)
    let (entities, relations, triples, name_noise) = match variant {
        "D-Z" => (38_960, 3_024, 165_556, 0.45),
        "D-J" => (39_594, 2_452, 170_698, 0.42),
        "D-F" => (39_654, 2_111, 221_720, 0.30),
        other => panic!("unknown DBP15K variant {other:?} (expected D-Z, D-J or D-F)"),
    };
    let links = 15_000;
    let heterogeneity = 0.55;
    let fillers = entities / 2 - links;
    PairSpec {
        id: variant.to_owned(),
        classes: links,
        fillers_per_kg: fillers,
        unmatchable_per_kg: 0,
        unmatchable_targets: None,
        relations: relations / 2,
        latent_edges: latent_for(triples / 2, fillers, heterogeneity),
        degree: DegreeModel::Uniform,
        heterogeneity,
        name_noise,
        multi_frac: 0.0,
        copy_edge_keep: 0.65,
        seed: 0xD8_15C0 + hash_variant(variant),
    }
    .scaled(scale)
}

/// SRPRS presets: sparse pairs following real-life entity distributions
/// (`"S-F"`, `"S-D"` cross-lingual; `"S-W"`, `"S-Y"` mono-lingual).
pub fn srprs(variant: &str, scale: f64) -> PairSpec {
    let (relations, triples, name_noise) = match variant {
        "S-F" => (398, 70_040, 0.25),
        "S-D" => (342, 75_740, 0.25),
        "S-W" => (397, 78_580, 0.05),
        "S-Y" => (253, 70_317, 0.05),
        other => panic!("unknown SRPRS variant {other:?} (expected S-F, S-D, S-W or S-Y)"),
    };
    let links = 15_000;
    // SRPRS pairs every entity (30,000 entities, 15,000 links): no fillers.
    let heterogeneity = 0.35;
    PairSpec {
        id: variant.to_owned(),
        classes: links,
        fillers_per_kg: 0,
        unmatchable_per_kg: 0,
        unmatchable_targets: None,
        relations: relations / 2,
        latent_edges: latent_for(triples / 2, 0, heterogeneity),
        degree: DegreeModel::PowerLaw { exponent: 0.8 },
        heterogeneity,
        name_noise,
        multi_frac: 0.0,
        copy_edge_keep: 0.65,
        seed: 0x5_1915 + hash_variant(variant),
    }
    .scaled(scale)
}

/// DWY100K presets: large mono-lingual pairs (`"D-W"`, `"D-Y"`).
pub fn dwy100k(variant: &str, scale: f64) -> PairSpec {
    let (relations, triples) = match variant {
        "D-W" => (550, 912_068),
        "D-Y" => (333, 931_515),
        other => panic!("unknown DWY100K variant {other:?} (expected D-W or D-Y)"),
    };
    let links = 100_000;
    let heterogeneity = 0.35;
    PairSpec {
        id: variant.to_owned(),
        classes: links,
        fillers_per_kg: 0,
        unmatchable_per_kg: 0,
        unmatchable_targets: None,
        relations: relations / 2,
        latent_edges: latent_for(triples / 2, 0, heterogeneity),
        degree: DegreeModel::Uniform,
        heterogeneity,
        name_noise: 0.05,
        multi_frac: 0.0,
        copy_edge_keep: 0.65,
        seed: 0xD4_100 + hash_variant(variant),
    }
    .scaled(scale)
}

/// DBP15K+ presets: the DBP15K pairs extended with unmatchable entities on
/// both sides (paper §5.1, construction of Zeng et al., DASFAA 2021).
pub fn dbp15k_plus(variant: &str, scale: f64) -> PairSpec {
    let base = dbp15k(variant, 1.0);
    PairSpec {
        id: format!("{variant}+"),
        // The unmatchable entities are promoted from filler population: they
        // join the evaluation candidate sets.
        unmatchable_per_kg: 4_000,
        unmatchable_targets: Some(2_000),
        fillers_per_kg: base.fillers_per_kg.saturating_sub(4_000),
        ..base
    }
    .scaled(scale)
}

/// FB_DBP_MUL preset: the paper's new non-1-to-1 benchmark between Freebase
/// and DBpedia (44,716 entities, 164,882 triples, 22,117 gold links of
/// which 20,353 are non-1-to-1).
pub fn fb_dbp_mul(scale: f64) -> PairSpec {
    let heterogeneity = 0.40;
    // ~9,300 classes expanding to ~22k links / ~22k entities per side with
    // the MULTI_SHAPES mix at multi_frac 0.88.
    PairSpec {
        id: "FB-DBP".to_owned(),
        classes: 9_300,
        fillers_per_kg: 6_000,
        unmatchable_per_kg: 0,
        unmatchable_targets: None,
        relations: 1_035,
        latent_edges: latent_for(164_882 / 2, 6_000, heterogeneity),
        degree: DegreeModel::PowerLaw { exponent: 0.8 },
        heterogeneity,
        name_noise: 0.30,
        multi_frac: 0.88,
        copy_edge_keep: 0.65,
        seed: 0xFBDB,
    }
    .scaled(scale)
}

fn hash_variant(v: &str) -> u64 {
    v.bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64))
}

/// Named collections of presets, as used by the reproduction harness.
#[derive(Debug, Clone, Copy)]
pub struct BenchmarkSuite;

impl BenchmarkSuite {
    /// The three DBP15K variants.
    pub fn dbp15k(scale: f64) -> Vec<PairSpec> {
        ["D-Z", "D-J", "D-F"]
            .iter()
            .map(|v| dbp15k(v, scale))
            .collect()
    }

    /// The four SRPRS variants.
    pub fn srprs(scale: f64) -> Vec<PairSpec> {
        ["S-F", "S-D", "S-W", "S-Y"]
            .iter()
            .map(|v| srprs(v, scale))
            .collect()
    }

    /// The two DWY100K variants.
    pub fn dwy100k(scale: f64) -> Vec<PairSpec> {
        ["D-W", "D-Y"].iter().map(|v| dwy100k(v, scale)).collect()
    }

    /// The three DBP15K+ variants.
    pub fn dbp15k_plus(scale: f64) -> Vec<PairSpec> {
        ["D-Z", "D-J", "D-F"]
            .iter()
            .map(|v| dbp15k_plus(v, scale))
            .collect()
    }

    /// Every Table 3 pair (DBP15K + SRPRS + DWY100K + FB_DBP_MUL).
    pub fn table3(scale: f64) -> Vec<PairSpec> {
        let mut all = Self::dbp15k(scale);
        all.extend(Self::srprs(scale));
        all.extend(Self::dwy100k(scale));
        all.push(fb_dbp_mul(scale));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::generate_pair;

    #[test]
    fn full_scale_stats_match_table3() {
        let spec = dbp15k("D-Z", 1.0);
        assert_eq!(spec.classes, 15_000);
        assert_eq!(spec.classes + spec.fillers_per_kg, 38_960 / 2);
        let s = srprs("S-Y", 1.0);
        assert_eq!(s.fillers_per_kg, 0);
        assert_eq!(s.relations, 126);
        let d = dwy100k("D-W", 1.0);
        assert_eq!(d.classes, 100_000);
    }

    #[test]
    #[should_panic(expected = "unknown DBP15K variant")]
    fn bad_variant_panics() {
        dbp15k("D-X", 1.0);
    }

    #[test]
    fn scaled_pair_reproduces_density() {
        // At 10% scale the generated pair should keep DBP15K's avg degree.
        let pair = generate_pair(&dbp15k("D-Z", 0.1));
        let stats = pair.stats();
        assert!(
            (stats.avg_degree - 4.2).abs() < 1.0,
            "avg degree {} should be near 4.2",
            stats.avg_degree
        );
        assert_eq!(stats.gold_links, 1_500);
    }

    #[test]
    fn srprs_is_sparser_than_dbp15k() {
        let dbp = generate_pair(&dbp15k("D-Z", 0.1)).stats();
        let srp = generate_pair(&srprs("S-F", 0.1)).stats();
        assert!(srp.avg_degree < dbp.avg_degree);
        assert!(
            srp.avg_degree < 3.5,
            "SRPRS degree {} should be low",
            srp.avg_degree
        );
    }

    #[test]
    fn dbp15k_plus_has_unmatchables() {
        let pair = generate_pair(&dbp15k_plus("D-Z", 0.05));
        assert_eq!(pair.unmatchable_sources.len(), 200);
        // Asymmetric split (see PairSpec::unmatchable_targets).
        assert_eq!(pair.unmatchable_targets.len(), 100);
        assert!(pair.gold.is_one_to_one());
    }

    #[test]
    fn fb_dbp_mul_is_mostly_non_one_to_one() {
        let pair = generate_pair(&fb_dbp_mul(0.05));
        let (one, multi) = pair.gold.link_multiplicity();
        let frac = multi as f64 / (one + multi) as f64;
        // Paper: 20,353 of 22,117 links are non-1-to-1 (92%).
        assert!(frac > 0.80, "non-1-to-1 fraction {frac} too low");
    }

    #[test]
    fn suite_enumerations() {
        assert_eq!(BenchmarkSuite::dbp15k(0.01).len(), 3);
        assert_eq!(BenchmarkSuite::srprs(0.01).len(), 4);
        assert_eq!(BenchmarkSuite::table3(0.01).len(), 10);
    }

    #[test]
    fn variant_seeds_differ() {
        assert_ne!(dbp15k("D-Z", 1.0).seed, dbp15k("D-J", 1.0).seed);
    }
}
