//! Ablation benchmarks for the design choices called out in `DESIGN.md`:
//! the RInf ranking step, CSLS's k, dummy-node padding overhead, and the
//! RREA encoder's bootstrapping rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use entmatcher_core::{Csls, MatchContext, RInf, ScoreOptimizer};
use entmatcher_core::{Hungarian, Matcher};
use entmatcher_data::{benchmarks, generate_pair};
use entmatcher_embed::{Encoder, RreaEncoder};
use entmatcher_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn random_scores(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, n, |_, _| rng.gen::<f32>())
}

/// RInf with vs. without the ranking conversion — the paper attributes
/// RInf's extra cost (and extra accuracy) entirely to this step.
fn bench_rinf_ranking_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rinf_ranking");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    let scores = random_scores(1024, 1);
    for (name, opt) in [
        ("with_ranking", RInf::default()),
        ("without_ranking", RInf::without_ranking()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |bencher, _| {
            bencher.iter(|| black_box(opt.apply(scores.clone())));
        });
    }
    group.finish();
}

/// CSLS cost as a function of k (top-k selection dominates).
fn bench_csls_k_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_csls_k");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    let scores = random_scores(1024, 2);
    for &k in &[1usize, 10, 50, 200] {
        let opt = Csls { k };
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bencher, _| {
            bencher.iter(|| black_box(opt.apply(scores.clone())));
        });
    }
    group.finish();
}

/// Dummy-node padding overhead on a rectangular Hungarian instance.
fn bench_dummy_padding_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dummy_padding");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    let mut rng = StdRng::seed_from_u64(3);
    let rect = Matrix::from_fn(700, 500, |_, _| rng.gen::<f32>());
    let ctx = MatchContext::default();
    group.bench_function("rectangular_native", |bencher| {
        bencher.iter(|| black_box(Hungarian.run(&rect, &ctx)));
    });
    group.bench_function("padded_square", |bencher| {
        bencher.iter(|| {
            let padded = entmatcher_core::dummy::pad_with_dummies(&rect, 0.0);
            black_box(Hungarian.run(&padded.scores, &ctx))
        });
    });
    group.finish();
}

/// RREA encoder cost vs bootstrap rounds (each round re-encodes and runs
/// a full mutual-NN search).
fn bench_rrea_bootstrap_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rrea_bootstrap");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    let pair = generate_pair(&benchmarks::dbp15k("D-Z", 0.02));
    for &rounds in &[0usize, 1, 2] {
        let encoder = RreaEncoder {
            bootstrap_rounds: rounds,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(rounds),
            &rounds,
            |bencher, _| {
                bencher.iter(|| black_box(encoder.encode(&pair)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rinf_ranking_ablation,
    bench_csls_k_ablation,
    bench_dummy_padding_ablation,
    bench_rrea_bootstrap_ablation
);
criterion_main!(benches);
