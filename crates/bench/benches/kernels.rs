//! Similarity-kernel benchmark: naive vs blocked GEMM vs fused top-k.
//!
//! Unlike the wall-clock microbenches, this target emits a machine-readable
//! artifact — `BENCH_kernels.json` — recording GFLOP/s and wall time for
//! every (kernel, n, d) configuration, so the perf trajectory of the
//! similarity hot path is tracked in-repo. The JSON is self-checked after
//! writing: the run fails if it does not parse back or if the naive /
//! blocked entries are missing.
//!
//! Modes:
//! * default — 2k and 10k entities, dims 64/128/300 (dense kernels at 2k,
//!   all kernels at 10k/d=128);
//! * `--full` — adds a 30k-entity fused-only configuration (the dense
//!   output matrix alone would be 3.6 GB, which is exactly the point of
//!   the fused kernel);
//! * `ENTMATCHER_BENCH_QUICK=1` / `--test` / `--quick` — CI smoke: one
//!   tiny configuration, still exercising measurement, JSON write and
//!   self-check.
//!
//! Output path: `ENTMATCHER_KERNEL_BENCH_OUT` if set; otherwise
//! `BENCH_kernels.json` in the workspace root (quick mode defaults into
//! the temp dir so `cargo test` runs do not dirty the tree).

use entmatcher_linalg::{fused_topk, matmul_blocked, matmul_naive, Matrix};
use entmatcher_support::json::{self, Json, Map, ToJson};
use entmatcher_support::rng::{Rng, SeedableRng, StdRng};
use std::hint::black_box;
use std::time::Instant;

/// One measured configuration.
struct Entry {
    kernel: &'static str,
    m: usize,
    n: usize,
    d: usize,
    seconds: f64,
    gflops: f64,
    reps: u32,
}

impl ToJson for Entry {
    fn to_json(&self) -> Json {
        let mut map = Map::new();
        map.insert("kernel", self.kernel);
        map.insert("m", self.m);
        map.insert("n", self.n);
        map.insert("d", self.d);
        map.insert("seconds", self.seconds);
        map.insert("gflops", self.gflops);
        map.insert("reps", self.reps);
        Json::Obj(map)
    }
}

fn random_embeddings(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, d, |_, _| rng.gen::<f32>() - 0.5)
}

/// Times `body` with adaptive repetitions: at least one rep, and more
/// (up to `max_reps`) until the measurement exceeds ~0.3 s, so tiny
/// configurations are not noise-dominated while 10k+ ones run once.
fn measure(max_reps: u32, mut body: impl FnMut()) -> (f64, u32) {
    let mut reps = 0u32;
    let start = Instant::now();
    loop {
        body();
        reps += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if reps >= max_reps || elapsed > 0.3 {
            return (elapsed / reps as f64, reps);
        }
    }
}

fn bench_config(
    entries: &mut Vec<Entry>,
    n: usize,
    d: usize,
    dense: bool,
    fused_k: usize,
    max_reps: u32,
) {
    let a = random_embeddings(n, d, 0xA5);
    let b = random_embeddings(n, d, 0x5A);
    // One multiply + one add per (i, j, d) triple.
    let flops = 2.0 * (n as f64) * (n as f64) * (d as f64);
    if dense {
        let (secs, reps) = measure(max_reps, || {
            black_box(matmul_naive(&a, &b).unwrap());
        });
        entries.push(Entry {
            kernel: "naive",
            m: n,
            n,
            d,
            seconds: secs,
            gflops: flops / secs / 1e9,
            reps,
        });
        eprintln!("kernels: naive   n={n} d={d}: {secs:.3}s ({:.2} GFLOP/s)", flops / secs / 1e9);
        let (secs, reps) = measure(max_reps, || {
            black_box(matmul_blocked(&a, &b).unwrap());
        });
        entries.push(Entry {
            kernel: "blocked",
            m: n,
            n,
            d,
            seconds: secs,
            gflops: flops / secs / 1e9,
            reps,
        });
        eprintln!("kernels: blocked n={n} d={d}: {secs:.3}s ({:.2} GFLOP/s)", flops / secs / 1e9);
    }
    let (secs, reps) = measure(max_reps, || {
        black_box(fused_topk(&a, &b, fused_k).unwrap());
    });
    entries.push(Entry {
        kernel: "fused_topk",
        m: n,
        n,
        d,
        seconds: secs,
        gflops: flops / secs / 1e9,
        reps,
    });
    eprintln!("kernels: fused   n={n} d={d} k={fused_k}: {secs:.3}s ({:.2} GFLOP/s)", flops / secs / 1e9);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = std::env::var("ENTMATCHER_BENCH_QUICK").ok().as_deref() == Some("1")
        || args.iter().any(|a| a == "--test" || a == "--quick");
    let full = args.iter().any(|a| a == "--full");

    let out_path = std::env::var("ENTMATCHER_KERNEL_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            if quick {
                std::env::temp_dir().join("BENCH_kernels.json")
            } else {
                // cargo runs bench targets with CWD = package dir; the
                // canonical artifact lives in the workspace root.
                let root = std::env::var("CARGO_MANIFEST_DIR")
                    .map(|p| {
                        std::path::Path::new(&p)
                            .ancestors()
                            .nth(2)
                            .expect("workspace root")
                            .to_path_buf()
                    })
                    .unwrap_or_else(|_| std::path::PathBuf::from("."));
                root.join("BENCH_kernels.json")
            }
        });

    let mut entries = Vec::new();
    if quick {
        bench_config(&mut entries, 256, 64, true, 10, 3);
    } else {
        bench_config(&mut entries, 2000, 64, true, 10, 5);
        bench_config(&mut entries, 2000, 128, true, 10, 5);
        bench_config(&mut entries, 2000, 300, true, 10, 5);
        // The acceptance configuration: 10k x 10k, d = 128.
        bench_config(&mut entries, 10_000, 128, true, 10, 2);
        if full {
            // Dense would materialize a 30k x 30k (3.6 GB) matrix; only
            // the fused kernel runs at this scale.
            bench_config(&mut entries, 30_000, 128, false, 10, 1);
        }
    }

    let mut doc = Map::new();
    doc.insert("schema", "entmatcher/kernel-bench/v1");
    doc.insert(
        "note",
        "flops = 2*m*n*d per pass; fused_topk includes the top-k reduction",
    );
    doc.insert("threads", std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    doc.insert("quick", quick);
    doc.insert("entries", &entries);
    let text = Json::Obj(doc).pretty();
    std::fs::write(&out_path, &text).expect("write BENCH_kernels.json");

    // Self-check: the artifact must parse back and contain both dense
    // kernels (the perf comparison the repo tracks) with finite numbers.
    let parsed = json::Json::parse(&text).expect("BENCH_kernels.json must parse");
    let entries_json = parsed
        .get("entries")
        .and_then(|e| e.as_array())
        .expect("entries array");
    for kernel in ["naive", "blocked"] {
        let found = entries_json.iter().any(|e| {
            e.get("kernel").and_then(|k| k.as_str()) == Some(kernel)
                && e.get("gflops")
                    .and_then(|g| g.as_f64())
                    .is_some_and(|g| g.is_finite() && g > 0.0)
        });
        assert!(found, "self-check: no valid '{kernel}' entry in artifact");
    }
    println!(
        "kernels bench: wrote {} ({} entries, self-check ok)",
        out_path.display(),
        entries_json.len()
    );
}
