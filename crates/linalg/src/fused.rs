//! Fused streaming similarity -> reduction kernels.
//!
//! The dense pipeline computes `S = A * B^T` in full and only then ranks
//! it; at 100k entities the intermediate alone is tens of gigabytes. The
//! kernels here fuse the two steps: a register-tiled score tile (see
//! [`crate::gemm`]) is computed into a small scratch buffer, immediately
//! reduced into per-row bounded state (a top-k heap or a running argmax),
//! and discarded — peak memory drops from `O(m*n)` to
//! `O(m*k + tile)` while the scores themselves stay bit-identical to the
//! dense kernel (both accumulate depth in the same sequential order).
//!
//! Entry points:
//! * [`fused_topk`] — per-row top-k `(index, score)` lists;
//! * [`fused_topk_means`] — per-row mean of the top-k scores (the CSLS
//!   neighbourhood statistic phi);
//! * [`fused_argmax_affine`] — per-row argmax of
//!   `scale * s(i,j) + row_off[i] + col_off[j]`, which covers streaming
//!   Greedy (`scale = 1`, no offsets) and the CSLS decision pass
//!   (`scale = 2`, offsets `-phi`).
//!
//! All of them take *embedding* operands and compute dot-product scores;
//! for cosine similarity, L2-normalize the operands first.
//!
//! Telemetry (when enabled): `fused.tiles`, `fused.rows`.

use crate::error::LinalgError;
use crate::gemm::{tile_into, tile_stride, PackedB, PackedOperand, NR};
use crate::matrix::Matrix;
use crate::parallel::{par_row_chunks_mut_grained, Grain};
use crate::Result;
use entmatcher_support::telemetry;

/// Rows of `A` scored per tile pass (bounds the scratch buffer height).
const TILE_ROWS: usize = 16;

/// Cap on tile width in packed strips, so shallow depths cannot inflate
/// the scratch buffer past ~128 KiB.
const MAX_TILE_STRIPS: usize = 256;

/// A bounded top-k accumulator over `(index, value)` pairs.
///
/// Keeps the `k` largest values seen; among equal values, earlier indices
/// win (matching [`crate::rank::argmax`]'s first-occurrence rule). NaN
/// values never enter. Backed by a binary min-heap ordered by
/// `(value asc, index desc)` so the root is always the entry a new value
/// must strictly beat.
#[derive(Debug, Clone)]
pub struct TopKAccumulator {
    k: usize,
    /// Min-heap by `(value, Reverse(index))`.
    heap: Vec<(f32, u32)>,
}

impl Default for TopKAccumulator {
    fn default() -> Self {
        TopKAccumulator::new(0)
    }
}

/// Heap ordering key: value ascending, index descending — the root is the
/// weakest entry, and among equal values the *latest* index sits at the
/// root so it is evicted first (earliest-index retention).
#[inline]
fn weaker(a: (f32, u32), b: (f32, u32)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 > b.1)
}

impl TopKAccumulator {
    /// Creates an accumulator keeping the `k` largest values.
    pub fn new(k: usize) -> Self {
        TopKAccumulator {
            k,
            heap: Vec::with_capacity(k.min(1024)),
        }
    }

    /// Offers one `(index, value)` observation.
    #[inline]
    pub fn push(&mut self, index: u32, value: f32) {
        if self.k == 0 || value.is_nan() {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push((value, index));
            self.sift_up(self.heap.len() - 1);
        } else if weaker(self.heap[0], (value, index)) {
            self.heap[0] = (value, index);
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if weaker(self.heap[i], self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut weakest = i;
            if l < self.heap.len() && weaker(self.heap[l], self.heap[weakest]) {
                weakest = l;
            }
            if r < self.heap.len() && weaker(self.heap[r], self.heap[weakest]) {
                weakest = r;
            }
            if weakest == i {
                return;
            }
            self.heap.swap(i, weakest);
            i = weakest;
        }
    }

    /// Number of retained entries (`<= k`).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The retained entries as `(index, value)`, best first (value
    /// descending, ties by index ascending).
    pub fn into_sorted_desc(self) -> Vec<(u32, f32)> {
        let mut out: Vec<(u32, f32)> = self.heap.into_iter().map(|(v, i)| (i, v)).collect();
        out.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// Mean of the retained values, summed in canonical (descending)
    /// order so any two accumulators holding the same value multiset
    /// report the same mean. `0.0` when empty, matching
    /// [`crate::rank::top_k_mean`] on empty input.
    pub fn mean(&self) -> f32 {
        if self.heap.is_empty() {
            return 0.0;
        }
        let mut vals: Vec<f32> = self.heap.iter().map(|&(v, _)| v).collect();
        vals.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        vals.iter().sum::<f32>() / vals.len() as f32
    }
}

fn check_dims(op: &'static str, a: &Matrix, b: &Matrix) -> Result<()> {
    if a.cols() != b.cols() {
        return Err(LinalgError::DimMismatch {
            op,
            left: a.shape(),
            right: b.shape(),
        });
    }
    Ok(())
}

/// Streams score tiles of `A * B^T` and hands each one to `visit`:
/// `visit(state, global_row, col0, scores)` is called once per
/// (tile pass, row) with the scored slice for columns
/// `col0..col0+scores.len()`. Columns arrive in ascending order for every
/// row.
fn fused_scan<S: Send + Default + Clone>(
    a: &Matrix,
    b: &Matrix,
    visit: impl Fn(&mut S, usize, usize, &[f32]) + Sync,
) -> Vec<S> {
    if a.rows() == 0 || b.rows() == 0 {
        telemetry::add("fused.rows", a.rows() as u64);
        return vec![S::default(); a.rows()];
    }
    fused_scan_packed(a, &PackedB::pack(b), visit)
}

/// [`fused_scan`] against a *pre-packed* right operand — the entry point
/// for callers that amortize packing across many scans (e.g. ANN inverted
/// lists stored directly as packed strips). Generic over the operand's
/// storage precision: quantized payloads dequantize inside the register
/// block, so the scratch tile is the only f32 copy that ever exists.
fn fused_scan_packed<S: Send + Default + Clone, P: PackedOperand + ?Sized>(
    a: &Matrix,
    packed: &P,
    visit: impl Fn(&mut S, usize, usize, &[f32]) + Sync,
) -> Vec<S> {
    let m = a.rows();
    let mut state = vec![S::default(); m];
    if m == 0 || packed.n() == 0 {
        telemetry::add("fused.rows", m as u64);
        return state;
    }
    let strips = packed.strips();
    let pass_strips = packed.panel_strips().min(MAX_TILE_STRIPS);
    let stride = tile_stride(pass_strips);
    let tiles = std::sync::atomic::AtomicU64::new(0);
    let visit = &visit;
    let packed_ref = packed;
    // One state item scans the entire packed operand (n * d work); never
    // split tasks below the streaming tile height.
    let grain = Grain::for_item_cost(packed.n().saturating_mul(packed.d().max(1)))
        .at_least(TILE_ROWS);
    par_row_chunks_mut_grained(&mut state, 1, grain, |start_row, states| {
        let rows = states.len();
        let mut scratch = vec![0.0f32; TILE_ROWS * stride];
        let mut local_tiles = 0u64;
        let mut s0 = 0usize;
        while s0 < strips {
            let s1 = (s0 + pass_strips).min(strips);
            let pass_stride = tile_stride(s1 - s0);
            let col0 = s0 * NR;
            let mut r0 = 0usize;
            while r0 < rows {
                let height = TILE_ROWS.min(rows - r0);
                let (width, t) = tile_into(
                    a,
                    start_row + r0,
                    height,
                    packed_ref,
                    s0,
                    s1,
                    &mut scratch,
                );
                local_tiles += t;
                for local in 0..height {
                    let row_scores = &scratch[local * pass_stride..local * pass_stride + width];
                    visit(&mut states[r0 + local], start_row + r0 + local, col0, row_scores);
                }
                r0 += height;
            }
            s0 = s1;
        }
        tiles.fetch_add(local_tiles, std::sync::atomic::Ordering::Relaxed);
    });
    telemetry::add("fused.tiles", tiles.into_inner());
    telemetry::add("fused.rows", m as u64);
    state
}

/// For each row of `a`, the top-`k` scoring rows of `b` as
/// `(index, score)` pairs, best first — without materializing the `m x n`
/// score matrix. Scores are raw dot products (normalize for cosine).
pub fn fused_topk(a: &Matrix, b: &Matrix, k: usize) -> Result<Vec<Vec<(u32, f32)>>> {
    check_dims("fused_topk", a, b)?;
    #[derive(Clone, Default)]
    struct St(Option<TopKAccumulator>);
    let kk = k;
    let state = fused_scan::<St>(a, b, |st, _row, col0, scores| {
        let acc = st.0.get_or_insert_with(|| TopKAccumulator::new(kk));
        for (j, &v) in scores.iter().enumerate() {
            acc.push((col0 + j) as u32, v);
        }
    });
    Ok(state
        .into_iter()
        .map(|st| st.0.map(TopKAccumulator::into_sorted_desc).unwrap_or_default())
        .collect())
}

/// [`fused_topk`] against a *pre-packed* right operand: per-row top-`k`
/// `(index, score)` pairs of `A * P^T`, best first. Packing cost is paid
/// once by the caller and amortized over many scans — the tile path
/// (register blocks, SIMD dispatch, bounded heaps) is identical to
/// [`fused_topk`], so the scores are bit-identical to the dense product of
/// `a` with the matrix `P` was packed from (its *dequantized* matrix for
/// reduced-precision operands).
pub fn fused_topk_packed<P: PackedOperand + ?Sized>(
    a: &Matrix,
    packed: &P,
    k: usize,
) -> Result<Vec<Vec<(u32, f32)>>> {
    if a.cols() != packed.d() {
        return Err(LinalgError::DimMismatch {
            op: "fused_topk_packed",
            left: a.shape(),
            right: (packed.n(), packed.d()),
        });
    }
    #[derive(Clone, Default)]
    struct St(Option<TopKAccumulator>);
    let kk = k;
    let state = fused_scan_packed::<St, P>(a, packed, |st, _row, col0, scores| {
        let acc = st.0.get_or_insert_with(|| TopKAccumulator::new(kk));
        for (j, &v) in scores.iter().enumerate() {
            acc.push((col0 + j) as u32, v);
        }
    });
    Ok(state
        .into_iter()
        .map(|st| st.0.map(TopKAccumulator::into_sorted_desc).unwrap_or_default())
        .collect())
}

/// For each row of `a`, the mean of its top-`k` scores against `b` — the
/// CSLS neighbourhood statistic — computed tile-streamed. Equals
/// [`crate::rank::top_k_mean`] over the dense score row.
pub fn fused_topk_means(a: &Matrix, b: &Matrix, k: usize) -> Result<Vec<f32>> {
    check_dims("fused_topk_means", a, b)?;
    #[derive(Clone, Default)]
    struct St(Option<TopKAccumulator>);
    let kk = k;
    let state = fused_scan::<St>(a, b, |st, _row, col0, scores| {
        let acc = st.0.get_or_insert_with(|| TopKAccumulator::new(kk));
        for (j, &v) in scores.iter().enumerate() {
            acc.push((col0 + j) as u32, v);
        }
    });
    Ok(state
        .into_iter()
        .map(|st| st.0.as_ref().map(TopKAccumulator::mean).unwrap_or(0.0))
        .collect())
}

/// [`fused_topk_means`] against a *pre-packed* right operand (any
/// [`PackedOperand`] precision): packing is paid once by the caller and
/// shared with the decision pass, which at reduced precision also shrinks
/// the resident operand by the element-width ratio.
pub fn fused_topk_means_packed<P: PackedOperand + ?Sized>(
    a: &Matrix,
    packed: &P,
    k: usize,
) -> Result<Vec<f32>> {
    if a.cols() != packed.d() {
        return Err(LinalgError::DimMismatch {
            op: "fused_topk_means_packed",
            left: a.shape(),
            right: (packed.n(), packed.d()),
        });
    }
    #[derive(Clone, Default)]
    struct St(Option<TopKAccumulator>);
    let kk = k;
    let state = fused_scan_packed::<St, P>(a, packed, |st, _row, col0, scores| {
        let acc = st.0.get_or_insert_with(|| TopKAccumulator::new(kk));
        for (j, &v) in scores.iter().enumerate() {
            acc.push((col0 + j) as u32, v);
        }
    });
    Ok(state
        .into_iter()
        .map(|st| st.0.as_ref().map(TopKAccumulator::mean).unwrap_or(0.0))
        .collect())
}

/// For each row `i` of `a`, the argmax over `j` of
/// `(scale * s(i, j) + row_off[i]) + col_off[j]` (offsets default to
/// zero), streamed without the dense matrix. First occurrence wins ties
/// and NaN never wins, matching [`crate::rank::argmax`]. The evaluation
/// order is fixed so the corrected values are bit-identical to the dense
/// CSLS expression `(2s - phi_u) - phi_v` when called with negated phis.
pub fn fused_argmax_affine(
    a: &Matrix,
    b: &Matrix,
    scale: f32,
    row_off: Option<&[f32]>,
    col_off: Option<&[f32]>,
) -> Result<Vec<Option<u32>>> {
    check_dims("fused_argmax_affine", a, b)?;
    if let Some(off) = row_off {
        assert_eq!(off.len(), a.rows(), "row offset length mismatch");
    }
    if let Some(off) = col_off {
        assert_eq!(off.len(), b.rows(), "col offset length mismatch");
    }
    #[derive(Clone)]
    struct Best(Option<u32>, f32);
    impl Default for Best {
        fn default() -> Self {
            Best(None, f32::NEG_INFINITY)
        }
    }
    let state = fused_scan::<Best>(a, b, |best, row, col0, scores| {
        let ro = row_off.map_or(0.0, |off| off[row]);
        for (j, &s) in scores.iter().enumerate() {
            let col = col0 + j;
            let mut v = scale * s + ro;
            if let Some(off) = col_off {
                v += off[col];
            }
            if v > best.1 {
                *best = Best(Some(col as u32), v);
            }
        }
    });
    Ok(state.into_iter().map(|b| b.0).collect())
}

/// [`fused_argmax_affine`] against a *pre-packed* right operand (any
/// [`PackedOperand`] precision) — lets the streaming decision pass reuse
/// the packed (possibly quantized) operand the statistics pass built.
pub fn fused_argmax_affine_packed<P: PackedOperand + ?Sized>(
    a: &Matrix,
    packed: &P,
    scale: f32,
    row_off: Option<&[f32]>,
    col_off: Option<&[f32]>,
) -> Result<Vec<Option<u32>>> {
    if a.cols() != packed.d() {
        return Err(LinalgError::DimMismatch {
            op: "fused_argmax_affine_packed",
            left: a.shape(),
            right: (packed.n(), packed.d()),
        });
    }
    if let Some(off) = row_off {
        assert_eq!(off.len(), a.rows(), "row offset length mismatch");
    }
    if let Some(off) = col_off {
        assert_eq!(off.len(), packed.n(), "col offset length mismatch");
    }
    #[derive(Clone)]
    struct Best(Option<u32>, f32);
    impl Default for Best {
        fn default() -> Self {
            Best(None, f32::NEG_INFINITY)
        }
    }
    let state = fused_scan_packed::<Best, P>(a, packed, |best, row, col0, scores| {
        let ro = row_off.map_or(0.0, |off| off[row]);
        for (j, &s) in scores.iter().enumerate() {
            let col = col0 + j;
            let mut v = scale * s + ro;
            if let Some(off) = col_off {
                v += off[col];
            }
            if v > best.1 {
                *best = Best(Some(col as u32), v);
            }
        }
    });
    Ok(state.into_iter().map(|b| b.0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul_naive;
    use crate::rank::{argmax, top_k_desc, top_k_mean};

    fn seq_matrix(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            (((r * 13 + c * 29 + salt * 3) % 19) as f32 - 9.0) * 0.5
        })
    }

    #[test]
    fn accumulator_keeps_k_largest_with_stable_ties() {
        let mut acc = TopKAccumulator::new(3);
        for (i, v) in [0.5, 0.9, 0.5, 0.1, 0.9, 0.7].iter().enumerate() {
            acc.push(i as u32, *v);
        }
        // Top-3 values: 0.9 (idx 1), 0.9 (idx 4), 0.7 (idx 5); the tie at
        // 0.5 never enters, and among the 0.9s the earlier index leads.
        assert_eq!(acc.clone().into_sorted_desc(), vec![(1, 0.9), (4, 0.9), (5, 0.7)]);
        assert!((acc.mean() - (0.9 + 0.9 + 0.7) / 3.0).abs() < 1e-6);
    }

    #[test]
    fn accumulator_ignores_nan_and_k_zero() {
        let mut acc = TopKAccumulator::new(2);
        acc.push(0, f32::NAN);
        assert!(acc.is_empty());
        assert_eq!(acc.mean(), 0.0);
        let mut none = TopKAccumulator::new(0);
        none.push(0, 1.0);
        assert!(none.is_empty());
    }

    #[test]
    fn fused_topk_matches_dense_selection() {
        let a = seq_matrix(23, 7, 1);
        let b = seq_matrix(41, 7, 2);
        let dense = matmul_naive(&a, &b).unwrap();
        let fused = fused_topk(&a, &b, 5).unwrap();
        for i in 0..a.rows() {
            let want = top_k_desc(dense.row(i), 5);
            let got: Vec<usize> = fused[i].iter().map(|&(j, _)| j as usize).collect();
            // Value sequences must agree exactly (indices can differ only
            // under exact value ties).
            assert_eq!(got.len(), want.len());
            for (g, w) in fused[i].iter().zip(want.iter()) {
                assert_eq!(g.1, dense.get(i, *w), "row {i}");
            }
            // And fused scores are the dense scores at the picked columns.
            for &(j, v) in &fused[i] {
                assert_eq!(v, dense.get(i, j as usize));
            }
        }
    }

    #[test]
    fn fused_topk_packed_matches_unpacked() {
        let a = seq_matrix(14, 7, 11);
        let b = seq_matrix(37, 7, 12);
        let packed = PackedB::pack(&b);
        for k in [1usize, 4, 50] {
            assert_eq!(
                fused_topk_packed(&a, &packed, k).unwrap(),
                fused_topk(&a, &b, k).unwrap(),
                "k={k}"
            );
        }
        // Degenerate shapes and dim mismatch behave like the unpacked API.
        let empty = PackedB::pack(&Matrix::zeros(0, 7));
        assert_eq!(fused_topk_packed(&a, &empty, 3).unwrap(), vec![vec![]; 14]);
        let wrong = PackedB::pack(&Matrix::zeros(4, 9));
        assert!(fused_topk_packed(&a, &wrong, 3).is_err());
    }

    #[test]
    fn fused_means_match_dense_top_k_mean() {
        let a = seq_matrix(17, 9, 3);
        let b = seq_matrix(30, 9, 4);
        let dense = matmul_naive(&a, &b).unwrap();
        for k in [1usize, 3, 10, 100] {
            let fused = fused_topk_means(&a, &b, k).unwrap();
            for i in 0..a.rows() {
                let want = top_k_mean(dense.row(i), k);
                assert!(
                    (fused[i] - want).abs() < 1e-5,
                    "k={k} row {i}: {} vs {want}",
                    fused[i]
                );
            }
        }
    }

    #[test]
    fn fused_argmax_matches_dense_greedy() {
        let a = seq_matrix(19, 6, 5);
        let b = seq_matrix(27, 6, 6);
        let dense = matmul_naive(&a, &b).unwrap();
        let fused = fused_argmax_affine(&a, &b, 1.0, None, None).unwrap();
        for i in 0..a.rows() {
            assert_eq!(fused[i].map(|j| j as usize), argmax(dense.row(i)), "row {i}");
        }
    }

    #[test]
    fn fused_argmax_applies_column_offsets() {
        let a = seq_matrix(8, 5, 7);
        let b = seq_matrix(12, 5, 8);
        let dense = matmul_naive(&a, &b).unwrap();
        let col_off: Vec<f32> = (0..12).map(|j| (j as f32) * -0.35).collect();
        let fused = fused_argmax_affine(&a, &b, 2.0, None, Some(&col_off)).unwrap();
        for i in 0..a.rows() {
            let corrected: Vec<f32> = dense
                .row(i)
                .iter()
                .enumerate()
                .map(|(j, &s)| 2.0 * s + col_off[j])
                .collect();
            assert_eq!(fused[i].map(|j| j as usize), argmax(&corrected), "row {i}");
        }
    }

    #[test]
    fn empty_operands_degrade_gracefully() {
        let a = seq_matrix(4, 3, 9);
        let empty = Matrix::zeros(0, 3);
        assert_eq!(fused_topk(&a, &empty, 3).unwrap(), vec![vec![]; 4]);
        assert_eq!(fused_topk_means(&a, &empty, 3).unwrap(), vec![0.0; 4]);
        assert_eq!(
            fused_argmax_affine(&a, &empty, 1.0, None, None).unwrap(),
            vec![None; 4]
        );
        let no_rows = Matrix::zeros(0, 3);
        assert!(fused_topk(&no_rows, &a, 3).unwrap().is_empty());
    }

    #[test]
    fn dim_mismatch_is_an_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        assert!(fused_topk(&a, &b, 1).is_err());
        assert!(fused_topk_means(&a, &b, 1).is_err());
        assert!(fused_argmax_affine(&a, &b, 1.0, None, None).is_err());
    }
}
